"""Template-based CPU host-module generation (paper Figure 6).

Generates the three-phase host code from the analysis metadata, mirroring
the paper's template:

1. *Partial Block Execution* — compute ``p_size`` from the grid size,
   node count and tail-divergence metadata; execute this rank's block
   range in an OpenMP-parallel loop;
2. *Balanced-In-Place Allgather* — one MPI collective per communicated
   buffer, sized by ``unit_size``;
3. *Callback Block Execution* — every rank executes the remaining blocks.

The emitted C source is documentation of what the runtime executes (the
runtime and the generated code share the same plan arithmetic, which the
test suite cross-checks).
"""

from __future__ import annotations

from repro.analysis.metadata import KernelMetadata
from repro.ir.stmt import Kernel
from repro.ir.types import PointerType

__all__ = ["generate_host_module"]


def _mpi_type(elem_name: str) -> str:
    return {
        "char": "MPI_CHAR",
        "uchar": "MPI_UNSIGNED_CHAR",
        "short": "MPI_SHORT",
        "ushort": "MPI_UNSIGNED_SHORT",
        "int": "MPI_INT",
        "uint": "MPI_UNSIGNED",
        "long": "MPI_LONG_LONG",
        "ulong": "MPI_UNSIGNED_LONG_LONG",
        "float": "MPI_FLOAT",
        "double": "MPI_DOUBLE",
        "bool": "MPI_C_BOOL",
    }.get(elem_name, "MPI_BYTE")


def generate_host_module(kernel: Kernel, meta: KernelMetadata) -> str:
    """Render the three-phase host launcher as C source."""
    args = ", ".join(p.name for p in kernel.params)
    sep = ", " if args else ""
    sig = ", ".join(
        (
            f"{p.type.elem.name} *{p.name}"
            if isinstance(p.type, PointerType)
            else f"{p.type.name} {p.name}"
        )
        for p in kernel.params
    )
    lines = [
        f"void {kernel.name}_launch({sig}{sep}int grid_dim_x, int block_dim_x,",
        "                  int c_rank, int c_size) {",
    ]
    if not meta.distributable:
        lines += [
            "    /* not Allgather distributable: replicated execution",
        ]
        for r in meta.reasons:
            lines.append(f"     *   - {r}")
        lines += [
            "     */",
            "    #pragma omp parallel for",
            "    for (int bid = 0; bid < grid_dim_x; bid++)",
            f"        {kernel.name}_block({args}{sep}bid, block_dim_x, grid_dim_x);",
            "}",
        ]
        return "\n".join(lines)

    if meta.tail_divergent:
        lines.append(
            "    int full_blocks = cucc_resolve_tail_blocks(grid_dim_x, "
            "block_dim_x);  /* tail_divergent: true */"
        )
    else:
        lines.append(
            "    int full_blocks = grid_dim_x;  /* tail_divergent: false */"
        )
    lines += [
        "    int p_size = full_blocks / c_size;",
        "",
        "    /* phase 1: partial block execution */",
        "    #pragma omp parallel for",
        "    for (int bid = p_size * c_rank; bid < p_size * (c_rank + 1); bid++)",
        f"        {kernel.name}_block({args}{sep}bid, block_dim_x, grid_dim_x);",
        "",
        "    /* phase 2: balanced in-place Allgather */",
    ]
    for buf in meta.mem_ptrs:
        unit = meta.unit_elems[buf]
        elem = meta.elem_sizes[buf]
        mpi_t = _mpi_type(
            next(
                p.type.elem.name
                for p in kernel.params
                if p.name == buf and isinstance(p.type, PointerType)
            )
        )
        lines.append(
            f"    MPI_Allgather(MPI_IN_PLACE, 0, MPI_DATATYPE_NULL,"
        )
        lines.append(
            f"                  {buf}, p_size * ({unit}) /* x{elem}B */, "
            f"{mpi_t}, MPI_COMM_WORLD);"
        )
    lines += [
        "",
        "    /* phase 3: callback block execution (all ranks) */",
        "    #pragma omp parallel for",
        "    for (int bid = p_size * c_size; bid < grid_dim_x; bid++)",
        f"        {kernel.name}_block({args}{sep}bid, block_dim_x, grid_dim_x);",
        "}",
    ]
    return "\n".join(lines)

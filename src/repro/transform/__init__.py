"""Compiler transformations: block wrapping, vectorization, host codegen."""

from repro.transform.blockwrap import generate_kernel_module
from repro.transform.hostgen import generate_host_module
from repro.transform.simplify import simplify_expr, simplify_kernel
from repro.transform.regrid import (
    GID_PARAM,
    RegriddedKernel,
    choose_geometry,
    is_regriddable,
    regrid_kernel,
    regrid_workload,
)
from repro.transform.vectorize import Vectorization, analyze_vectorizability

__all__ = [
    "generate_kernel_module",
    "generate_host_module",
    "Vectorization",
    "analyze_vectorizability",
    "GID_PARAM",
    "RegriddedKernel",
    "is_regriddable",
    "regrid_kernel",
    "regrid_workload",
    "choose_geometry",
    "simplify_expr",
    "simplify_kernel",
]

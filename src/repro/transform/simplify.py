"""IR simplification: constant folding and algebraic identities.

Macro expansion (``#define N 1200``) and mechanical transformations (the
regridder, generated zoo kernels) leave constant subexpressions and
trivial identities in the IR.  This pass cleans them up before analysis
and execution.

Every rewrite is *exact* under the interpreter's semantics — folding is
performed with the same C-typed arithmetic the interpreter uses (float32
stays float32, integer division truncates toward zero, wraparound is
preserved), and floating-point identities are restricted to the ones
that hold for every value including NaN, infinities and signed zero
(``x * 1.0``, ``x / 1.0``; *not* ``x + 0.0``, which changes ``-0.0``).
The property-based test suite checks simplified kernels against the
originals on random inputs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Const,
    Expr,
    Load,
    Select,
    UnOp,
)
from repro.ir.stmt import For, If, Kernel, Stmt, While
from repro.ir.types import BOOL, DType
from repro.ir.visitor import map_expr

__all__ = ["simplify_expr", "simplify_kernel"]


def _const_val(e: Const):
    """The constant's value as the matching NumPy scalar type."""
    return e.type.np.type(e.value)


def _make_const(value, dtype: DType) -> Const:
    if dtype.is_bool:
        return Const(bool(value), dtype)
    if dtype.is_float:
        return Const(float(value), dtype)
    return Const(int(value), dtype)


def _fold_binop(e: BinOp) -> Expr | None:
    if not (isinstance(e.lhs, Const) and isinstance(e.rhs, Const)):
        return None
    a, b = _const_val(e.lhs), _const_val(e.rhs)
    rt = e.dtype
    op = e.op
    with np.errstate(all="ignore"):
        if op in ("&&", "||"):
            av, bv = bool(a), bool(b)
            return Const(av and bv if op == "&&" else av or bv, BOOL)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            fn = {
                "==": np.equal, "!=": np.not_equal, "<": np.less,
                "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
            }[op]
            from repro.ir.types import common_type

            ct = common_type(e.lhs.dtype, e.rhs.dtype)
            return Const(bool(fn(ct.np.type(a), ct.np.type(b))), BOOL)
        la = rt.np.type(a)
        ra = rt.np.type(b)
        if op == "+":
            return _make_const(la + ra, rt)
        if op == "-":
            return _make_const(la - ra, rt)
        if op == "*":
            return _make_const(la * ra, rt)
        if op == "/":
            if rt.is_float:
                return _make_const(la / ra, rt)
            if int(ra) == 0:
                return None  # leave division by zero visible
            from repro.interp.machine import _c_int_div

            return _make_const(_c_int_div(np.int64(la), np.int64(ra)), rt)
        if op == "%":
            if int(ra) == 0:
                return None
            from repro.interp.machine import _c_int_mod

            return _make_const(_c_int_mod(np.int64(la), np.int64(ra)), rt)
        if op == "<<":
            return _make_const(rt.np.type(a) << np.int64(b), rt)
        if op == ">>":
            return _make_const(rt.np.type(a) >> np.int64(b), rt)
        if op in ("&", "|", "^"):
            fn = {"&": np.bitwise_and, "|": np.bitwise_or,
                  "^": np.bitwise_xor}[op]
            return _make_const(fn(rt.np.type(a), rt.np.type(b)), rt)
    return None  # pragma: no cover


def _is_const(e: Expr, value) -> bool:
    return isinstance(e, Const) and not e.type.is_float and e.value == value


def _is_float_const(e: Expr, value: float) -> bool:
    return isinstance(e, Const) and e.type.is_float and e.value == value


def _identities(e: BinOp) -> Expr | None:
    op, l, r = e.op, e.lhs, e.rhs
    int_op = not e.dtype.is_float
    same_type = l.dtype == e.dtype if not isinstance(l, Const) else False
    # integer identities (exact, incl. wraparound: adding 0 never wraps)
    if int_op:
        if op in ("+", "|", "^") and _is_const(r, 0) and same_type:
            return l
        if op in ("+", "|", "^") and _is_const(l, 0) and r.dtype == e.dtype:
            return r
        if op == "-" and _is_const(r, 0) and same_type:
            return l
        if op == "*" and _is_const(r, 1) and same_type:
            return l
        if op == "*" and _is_const(l, 1) and r.dtype == e.dtype:
            return r
        if op == "*" and (_is_const(r, 0) or _is_const(l, 0)):
            return Const(0, e.dtype)
        if op in ("/",) and _is_const(r, 1) and same_type:
            return l
        if op in ("<<", ">>") and _is_const(r, 0) and l.dtype == e.dtype:
            return l
        if op == "&" and (_is_const(r, 0) or _is_const(l, 0)):
            return Const(0, e.dtype)
    else:
        # float: only NaN/inf/-0.0-safe identities
        if op == "*" and _is_float_const(r, 1.0) and l.dtype == e.dtype:
            return l
        if op == "*" and _is_float_const(l, 1.0) and r.dtype == e.dtype:
            return r
        if op == "/" and _is_float_const(r, 1.0) and l.dtype == e.dtype:
            return l
    if op == "&&":
        if isinstance(l, Const):
            return r if bool(l.value) else Const(False, BOOL)
        if isinstance(r, Const) and bool(r.value):
            return l
    if op == "||":
        if isinstance(l, Const):
            return Const(True, BOOL) if bool(l.value) else r
        if isinstance(r, Const) and not bool(r.value):
            return l
    return None


def _simplify_node(e: Expr) -> Expr | None:
    if isinstance(e, BinOp):
        folded = _fold_binop(e)
        if folded is not None:
            return folded
        return _identities(e)
    if isinstance(e, UnOp):
        if isinstance(e.operand, Const):
            v = _const_val(e.operand)
            with np.errstate(all="ignore"):
                if e.op == "-":
                    return _make_const(-v, e.dtype)
                if e.op == "!":
                    return Const(not bool(v), BOOL)
                if e.op == "~":
                    return _make_const(~e.dtype.np.type(v), e.dtype)
        if (
            e.op == "-"
            and isinstance(e.operand, UnOp)
            and e.operand.op == "-"
            and e.operand.operand.dtype == e.dtype
        ):
            return e.operand.operand  # -(-x) == x (exact for ints & floats)
    if isinstance(e, Cast):
        if isinstance(e.value, Const):
            with np.errstate(all="ignore"):
                return _make_const(e.type.np.type(_const_val(e.value)), e.type)
        if e.value.dtype == e.type:
            return e.value
    if isinstance(e, Select) and isinstance(e.cond, Const):
        taken = e.if_true if bool(e.cond.value) else e.if_false
        if taken.dtype == e.dtype:
            return taken
        return Cast(e.dtype, taken)
    return None


def simplify_expr(e: Expr) -> Expr:
    """Bottom-up constant folding + identity elimination."""
    return map_expr(e, _simplify_node)


def _simplify_body(body: list[Stmt]) -> list[Stmt]:
    out: list[Stmt] = []
    for s in body:
        s = _simplify_stmt(s)
        if isinstance(s, If) and isinstance(s.cond, Const):
            out.extend(s.then_body if bool(s.cond.value) else s.else_body)
            continue
        if isinstance(s, While) and isinstance(s.cond, Const) and not bool(
            s.cond.value
        ):
            continue
        if isinstance(s, For) and isinstance(s.start, Const) and isinstance(
            s.stop, Const
        ) and isinstance(s.step, Const):
            start, stop, step = int(s.start.value), int(s.stop.value), int(
                s.step.value
            )
            if step != 0 and len(range(start, stop, step)) == 0:
                continue  # provably zero-trip loop
        out.append(s)
    return out


def _simplify_stmt(s: Stmt) -> Stmt:
    kwargs = {}
    for f in dataclasses.fields(s):
        v = getattr(s, f.name)
        if isinstance(v, Expr):
            kwargs[f.name] = simplify_expr(v)
        elif isinstance(v, list):
            kwargs[f.name] = _simplify_body(v)
        else:
            kwargs[f.name] = v
    out = dataclasses.replace(s, **kwargs)
    out.loc = s.loc  # source location is not a field; carry it explicitly
    return out


def simplify_kernel(kernel: Kernel) -> Kernel:
    """Return a semantically identical kernel with folded constants,
    eliminated identities, and pruned dead branches/loops."""
    return Kernel(
        name=kernel.name,
        params=list(kernel.params),
        body=_simplify_body(kernel.body),
        source=kernel.source,
    )

"""The Allgather distributable analysis (paper section 6).

Two stages, mirroring the paper's compiler/runtime split:

**Static analysis** (:func:`analyze_kernel`) checks the three sufficient
conditions of section 6.2 on every global write site:

1. treating block index and block size as constants, the write index is
   affine in the thread index with a block-invariant coefficient and
   intercept;
2. enclosing conditionals are uniform, thread-symmetric, or *tail
   divergent*;
3. treating thread index and block size as constants, the write index is
   affine in the (1-D) block index with a positive coefficient.

and emits :class:`~repro.analysis.metadata.KernelMetadata` (the paper's
``tail_divergent`` / ``mem_ptr`` / ``unit_size`` block in Figure 6).

**Launch-time finalization** (:func:`finalize_plan`) substitutes the
concrete grid, block size and scalar arguments into the symbolic record,
resolves which blocks the tail guards demote to *callback blocks*,
numerically verifies that each regular block's write footprint is a dense
interval exactly ``unit_elems`` long (the balanced / disjoint / no-gap
criteria of the formal definition), and produces the three-phase
:class:`~repro.analysis.metadata.DistributionPlan`.

Both stages are *sufficient, not necessary* (section 6.2): any failure
degrades to a replicated plan — every node executes every block, which is
always correct and never communicates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.affine import (
    CTAID_SYMBOLS,
    TID_SYMBOLS,
    Poly,
    param_symbol,
)
from repro.analysis.guards import Guard, GuardKind
from repro.analysis.metadata import (
    BufferPlan,
    DistributionPlan,
    KernelMetadata,
    Verdict,
)
from repro.analysis.writes import WriteRecord, collect_writes
from repro.interp.grid import LaunchConfig
from repro.ir.stmt import Kernel

__all__ = ["KernelAnalysis", "analyze_kernel", "finalize_plan"]

#: Cap on enumerated (loop-combination x lane) footprint points per record
#: during launch-time verification.
MAX_FOOTPRINT_POINTS = 1 << 22


@dataclass
class KernelAnalysis:
    """Static analysis result: paper-visible metadata plus the raw
    write records the runtime needs for launch-time finalization."""

    kernel: Kernel
    metadata: KernelMetadata
    records: list[WriteRecord]

    @property
    def distributable(self) -> bool:
        return self.metadata.distributable


def _check_record(rec: WriteRecord) -> tuple[str | None, Poly | None, bool]:
    """Static checks for one write record.

    Returns ``(failure_reason, unit_elems_poly, is_tail_guarded)``;
    ``failure_reason`` is ``None`` when all conditions hold.
    """
    if rec.is_atomic:
        return (f"atomic write to {rec.buffer!r} (cross-block races)", None, False)
    if rec.in_while:
        return (f"write to {rec.buffer!r} inside a while loop", None, False)
    if not rec.analyzable_loops:
        return (
            f"write to {rec.buffer!r} inside a loop with thread-variant or "
            "data-dependent trip count",
            None,
            False,
        )
    idx = rec.index
    if idx is None:
        return (
            f"write index into {rec.buffer!r} is indirect or non-affine",
            None,
            False,
        )
    idx_syms = idx.symbols()
    index_vars = TID_SYMBOLS | CTAID_SYMBOLS
    if not idx.is_linear_in(index_vars):
        return (
            f"write index into {rec.buffer!r} is nonlinear in thread/block indices",
            None,
            False,
        )
    # condition 1: affine in the thread index with invariant coefficients
    for s in idx_syms & TID_SYMBOLS:
        if idx.coeff(s).symbols() & (index_vars | _loop_syms(idx)):
            return (
                f"thread-index coefficient of the write into {rec.buffer!r} "
                "is not block-invariant",
                None,
                False,
            )
    # condition 3: affine in the (linear) block index with a positive
    # coefficient.  Multi-dimensional grids are accepted when the axis
    # coefficients are consistent with x-fastest linearization, i.e. the
    # index is affine in blockIdx.y*gridDim.x + blockIdx.x (+ z term)
    # with the x coefficient — the idiom 2-D kernels use explicitly.
    c_bid = idx.coeff("ctaid.x") if "ctaid.x" in idx_syms else Poly()
    if "ctaid.x" in idx_syms:
        for axis in ("ctaid.x", "ctaid.y", "ctaid.z"):
            if axis in idx_syms and (
                idx.coeff(axis).symbols() & (index_vars | _loop_syms(idx))
            ):
                return (
                    f"block-index coefficient of the write into "
                    f"{rec.buffer!r} is not invariant",
                    None,
                    False,
                )
        if not c_bid.provably_positive():
            return (
                f"write interval of {rec.buffer!r} does not grow with the "
                "block index (non-positive coefficient)",
                None,
                False,
            )
        gx = Poly.sym("nctaid.x")
        gy = Poly.sym("nctaid.y")
        if "ctaid.y" in idx_syms and idx.coeff("ctaid.y") != c_bid * gx:
            return (
                f"write index into {rec.buffer!r} does not advance linearly "
                "with the linearized block id (blockIdx.y stride mismatch)",
                None,
                False,
            )
        if "ctaid.z" in idx_syms and idx.coeff("ctaid.z") != c_bid * gx * gy:
            return (
                f"write index into {rec.buffer!r} does not advance linearly "
                "with the linearized block id (blockIdx.z stride mismatch)",
                None,
                False,
            )
    else:
        return (
            f"write interval of {rec.buffer!r} does not advance with the "
            "block index (blocks overlap)",
            None,
            False,
        )
    # condition 2: enclosing conditionals
    tail = False
    for g in rec.guards:
        if g.kind is GuardKind.OPAQUE:
            return (
                f"write to {rec.buffer!r} guarded by a data-dependent condition",
                None,
                False,
            )
        if g.kind is GuardKind.BLOCK_VARIANT:
            return (
                f"write to {rec.buffer!r} guarded by a block-variant condition",
                None,
                False,
            )
        if g.kind is GuardKind.TAIL:
            tail = True
        if g.kind in (GuardKind.UNIFORM, GuardKind.THREAD_SYMMETRIC) and g.poly is None:
            return (
                f"write to {rec.buffer!r} guarded by an unevaluable condition",
                None,
                False,
            )
    return (None, c_bid, tail)


def _loop_syms(p: Poly) -> set[str]:
    return {s for s in p.symbols() if s.startswith("loop:")}


def analyze_kernel(kernel: Kernel) -> KernelAnalysis:
    """Run the static Allgather distributable analysis on a kernel."""
    records = collect_writes(kernel)
    meta = KernelMetadata(kernel_name=kernel.name, verdict=Verdict.DISTRIBUTABLE)
    units: dict[str, Poly] = {}
    for rec in records:
        reason, c_bid, tail = _check_record(rec)
        if reason is not None:
            meta.verdict = Verdict.NOT_DISTRIBUTABLE
            if reason not in meta.reasons:
                meta.reasons.append(reason)
            continue
        meta.tail_divergent |= tail
        if rec.buffer in units:
            if units[rec.buffer] != c_bid:
                meta.verdict = Verdict.NOT_DISTRIBUTABLE
                r = (
                    f"writes to {rec.buffer!r} advance at different rates "
                    "per block"
                )
                if r not in meta.reasons:
                    meta.reasons.append(r)
        else:
            units[rec.buffer] = c_bid  # type: ignore[assignment]
            meta.elem_sizes[rec.buffer] = rec.elem_size
    if meta.verdict is Verdict.DISTRIBUTABLE:
        meta.mem_ptrs = sorted(units)
        meta.unit_elems = {b: units[b] for b in meta.mem_ptrs}
    else:
        meta.mem_ptrs = []
        meta.unit_elems = {}
        meta.tail_divergent = False
    return KernelAnalysis(kernel=kernel, metadata=meta, records=records)


# ---------------------------------------------------------------------------
# launch-time finalization
# ---------------------------------------------------------------------------

def _symbol_values(
    config: LaunchConfig, scalar_args: dict[str, object]
) -> dict[str, object]:
    gx, gy, gz = config.grid
    bx, by, bz = config.block
    vals: dict[str, object] = {
        "ntid.x": bx,
        "ntid.y": by,
        "ntid.z": bz,
        "nctaid.x": gx,
        "nctaid.y": gy,
        "nctaid.z": gz,
    }
    for name, v in scalar_args.items():
        fv = float(v)
        if fv.is_integer():
            vals[param_symbol(name)] = int(fv)
    return vals


def _replicated(config: LaunchConfig, num_nodes: int, reason: str) -> DistributionPlan:
    return DistributionPlan(
        num_blocks=config.num_blocks,
        num_nodes=num_nodes,
        replicated=True,
        reason=reason,
    )


def _missing_symbols(polys: list[Poly], values: dict[str, object]) -> set[str]:
    need: set[str] = set()
    for p in polys:
        need |= p.symbols()
    return {
        s
        for s in need
        if s not in values and not s.startswith("loop:") and s not in TID_SYMBOLS
        and s not in CTAID_SYMBOLS
    }


def finalize_plan(
    analysis: KernelAnalysis,
    config: LaunchConfig,
    scalar_args: dict[str, object],
    num_nodes: int,
) -> DistributionPlan:
    """Concretize the static analysis into a three-phase execution plan.

    Any check that cannot be confirmed numerically degrades to a
    replicated plan (still correct, no communication).
    """
    meta = analysis.metadata
    B = config.num_blocks
    if num_nodes <= 1:
        return _replicated(config, num_nodes, "single node")
    if not meta.distributable:
        return _replicated(
            config, num_nodes, meta.reasons[0] if meta.reasons else "not distributable"
        )
    gx, gy, gz = config.grid
    if gy > 1 or gz > 1:
        # higher grid dimensions are fine only when every write really
        # advances with them (the static linearization check passed on
        # the axes the index mentions; an axis the index does NOT
        # mention means blocks along it write the same interval)
        for rec in analysis.records:
            syms = rec.index.symbols() if rec.index is not None else set()
            if (gy > 1 and "ctaid.y" not in syms) or (
                gz > 1 and "ctaid.z" not in syms
            ):
                return _replicated(
                    config,
                    num_nodes,
                    f"blocks along higher grid dimensions overlap on "
                    f"{rec.buffer!r}",
                )
    if not analysis.records:
        # no global writes at all: splitting is trivially consistent
        p_size = B // num_nodes
        if p_size == 0:
            return _replicated(config, num_nodes, "fewer blocks than nodes")
        return DistributionPlan(
            num_blocks=B,
            num_nodes=num_nodes,
            replicated=False,
            full_blocks=B,
            p_size=p_size,
            buffers=(),
        )

    values = _symbol_values(config, scalar_args)
    all_polys = [r.index for r in analysis.records if r.index is not None]
    all_polys += [g.poly for r in analysis.records for g in r.guards if g.poly]
    missing = _missing_symbols(all_polys, values)
    if missing:
        return _replicated(
            config,
            num_nodes,
            f"non-integral or unavailable parameters in index/guards: "
            f"{sorted(missing)}",
        )

    # ---- resolve tail guards: longest prefix of fully-passing blocks ----
    full = np.ones(B, dtype=bool)
    bids = np.arange(B, dtype=np.int64)
    worst_tid = {
        "tid.x": config.block[0] - 1,
        "tid.y": config.block[1] - 1,
        "tid.z": config.block[2] - 1,
    }
    seen_tail = set()
    for rec in analysis.records:
        for g in rec.guards:
            if g.kind is not GuardKind.TAIL or g in seen_tail:
                continue
            seen_tail.add(g)
            # TAIL implies positive thread coefficients: the worst thread
            # is the last one on each axis
            v = dict(values)
            v.update(worst_tid)
            v["ctaid.x"] = bids % config.grid[0]
            v["ctaid.y"] = (bids // config.grid[0]) % config.grid[1]
            v["ctaid.z"] = bids // (config.grid[0] * config.grid[1])
            full &= np.asarray(g.evaluate(v))
    full_blocks = B if full.all() else int(np.argmin(full))

    p_size = full_blocks // num_nodes
    if p_size == 0:
        return _replicated(
            config, num_nodes, "fewer fully-covered blocks than nodes"
        )

    # ---- enumerate block 0's write footprint per buffer -----------------
    tx, ty, tz = config.thread_coords()
    lane_values = dict(values)
    lane_values.update(
        {"tid.x": tx, "tid.y": ty, "tid.z": tz, "ctaid.x": 0, "ctaid.y": 0,
         "ctaid.z": 0}
    )
    footprints: dict[str, list[np.ndarray]] = {}
    unit_vals: dict[str, int] = {}
    for rec in analysis.records:
        unit = int(meta.unit_elems[rec.buffer].eval(values))
        if rec.buffer in unit_vals and unit_vals[rec.buffer] != unit:
            return _replicated(
                config, num_nodes, f"inconsistent unit size for {rec.buffer!r}"
            )
        unit_vals[rec.buffer] = unit
        loop_syms = {lp.symbol for lp in rec.loops}
        static_guards = [
            g for g in rec.guards if not (g.poly.symbols() & loop_syms)
        ]
        loop_guards = [g for g in rec.guards if g.poly.symbols() & loop_syms]
        mask = np.ones(config.threads_per_block, dtype=bool)
        active = True
        for g in static_guards:
            gv = g.evaluate(lane_values)
            if np.ndim(gv) == 0:
                if not bool(gv):
                    active = False
                    break
            else:
                mask &= np.asarray(gv, dtype=bool)
        if not active or not mask.any():
            continue
        # enumerate loop-iteration combinations
        ranges: list[range] = []
        shaping = rec.index.symbols() | {
            s for g in loop_guards for s in g.poly.symbols()
        }
        for lp in rec.loops:
            trips = _trip_range(lp, values)
            if lp.symbol in shaping:
                ranges.append(trips)
            else:
                # loop does not shape the write; one iteration reproduces
                # the footprint (repeated identical writes)
                ranges.append(range(min(1, len(trips))))
        combos = math.prod(len(r) for r in ranges) if ranges else 1
        if combos * int(mask.sum()) > MAX_FOOTPRINT_POINTS:
            return _replicated(
                config, num_nodes, "write footprint too large to verify"
            )
        if combos == 0:
            continue
        pieces = footprints.setdefault(rec.buffer, [])
        for combo in _product(ranges):
            v = dict(lane_values)
            for lp, lv in zip(rec.loops, combo):
                v[lp.symbol] = lv
            m = mask
            for g in loop_guards:
                gv = np.asarray(g.evaluate(v), dtype=bool)
                m = m & np.broadcast_to(gv, m.shape)
            if not m.any():
                continue
            idx = np.asarray(rec.index.eval(v))
            idx = np.broadcast_to(idx, m.shape)
            pieces.append(idx[m])

    # ---- density / disjointness verification ----------------------------
    plans = []
    for buf, pieces in footprints.items():
        offs = np.unique(np.concatenate(pieces))
        unit = unit_vals[buf]
        if unit <= 0:
            return _replicated(
                config, num_nodes, f"non-positive unit size for {buf!r}"
            )
        base = int(offs[0])
        dense = len(offs) == unit and int(offs[-1]) - base == unit - 1
        if not dense:
            return _replicated(
                config,
                num_nodes,
                f"block write footprint of {buf!r} is not a dense interval "
                f"of length {unit}",
            )
        plans.append(
            BufferPlan(
                buffer=buf,
                elem_size=meta.elem_sizes[buf],
                unit_elems=unit,
                base_elem=base,
            )
        )
    plans.sort(key=lambda p: p.buffer)
    return DistributionPlan(
        num_blocks=B,
        num_nodes=num_nodes,
        replicated=False,
        full_blocks=full_blocks,
        p_size=p_size,
        buffers=tuple(plans),
    )


def _trip_range(lp, values) -> range:
    start = int(lp.start.eval(values))
    stop = int(lp.stop.eval(values))
    step = int(lp.step.eval(values))
    if step == 0:
        return range(0)
    return range(start, stop, step)


def _product(ranges: list[range]):
    if not ranges:
        yield ()
        return
    import itertools

    yield from itertools.product(*ranges)

"""Divergence classification of branch conditions.

Condition 2 of the Allgather distributable analysis (paper section 6.2)
constrains the conditionals enclosing each global write.  We classify
every guard into one of:

``UNIFORM``
    No thread/block index involved — the guard evaluates identically for
    the whole grid, so it cannot unbalance per-block write volumes.
``THREAD_SYMMETRIC``
    Depends on ``threadIdx`` (and block-invariant values) but not on
    ``blockIdx`` — every block has the *same* set of threads passing, so
    per-block write volumes stay equal.  This covers the ubiquitous
    ``if (threadIdx.x == 0)`` reduction-output idiom (BinomialOption).
``TAIL``
    The paper's *tail divergence*: a bound check of the form
    ``affine(threadIdx, blockIdx) < bound`` with positive thread and
    block coefficients and a block-invariant bound.  All blocks below a
    bound-determined prefix pass entirely; the rest become callback
    blocks (resolved numerically at launch).
``BLOCK_VARIANT``
    Depends on ``blockIdx`` in a non-tail way — different blocks write
    different amounts; fails condition 2.
``OPAQUE``
    Data-dependent (loads, float compares, unanalyzable) — fails
    condition 2.

Analyzable guards are normalized to ``poly REL 0`` with ``REL`` one of
``<``, ``<=``, ``==``, ``!=`` (:class:`Guard`), a form that is closed
under negation and can be evaluated numerically at launch — both for
resolving which blocks a tail guard makes callback blocks, and for
computing per-thread write-footprint masks.  ``if (id >= n) return;``
negates to the *tail* guard ``id - n < 0`` on the code after it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.analysis.affine import CTAID_SYMBOLS, TID_SYMBOLS, Poly, eval_sym
from repro.errors import AnalysisError
from repro.ir.expr import BinOp, Expr, UnOp

__all__ = ["GuardKind", "Guard", "classify_guard", "guards_of_condition",
           "negate_conjunction"]


class GuardKind(enum.Enum):
    UNIFORM = "uniform"
    THREAD_SYMMETRIC = "thread-symmetric"
    TAIL = "tail-divergent"
    BLOCK_VARIANT = "block-variant"
    OPAQUE = "opaque"


#: Severity order used when several sub-conditions fold into one.
_SEVERITY = [
    GuardKind.UNIFORM,
    GuardKind.THREAD_SYMMETRIC,
    GuardKind.TAIL,
    GuardKind.BLOCK_VARIANT,
    GuardKind.OPAQUE,
]

_NEG_REL = {"lt": "ge", "le": "gt", "eq": "ne", "ne": "eq"}
_REL_FNS = {
    "lt": np.less,
    "le": np.less_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


@dataclass(frozen=True)
class Guard:
    """A classified branch condition, ``poly REL 0`` when analyzable.

    ``rel`` is one of ``lt``/``le``/``eq``/``ne``; ``poly`` is ``None``
    for opaque guards (which can neither be TAIL nor evaluated).
    """

    kind: GuardKind
    poly: Poly | None = None
    rel: str = "lt"

    def negated(self) -> "Guard":
        """Logical negation, re-classified from scratch."""
        if self.poly is None:
            return Guard(self.kind, None, self.rel)
        rel = _NEG_REL[self.rel]
        if rel == "ge":  # not(p < 0)  <=>  -p <= 0
            return _classify(-self.poly, "le")
        if rel == "gt":  # not(p <= 0)  <=>  -p < 0
            return _classify(-self.poly, "lt")
        return _classify(self.poly, rel)

    def evaluate(self, values: dict[str, object]):
        """Numerically evaluate the condition (scalar or lane-vectorized).

        Only valid for analyzable guards (``poly`` is not ``None``).
        """
        if self.poly is None:
            raise AnalysisError("cannot evaluate an opaque guard")
        v = self.poly.eval(values)
        return _REL_FNS[self.rel](v, 0)


def _classify_symbols(symbols: frozenset[str]) -> GuardKind:
    if symbols & CTAID_SYMBOLS:
        return GuardKind.BLOCK_VARIANT
    if symbols & TID_SYMBOLS:
        return GuardKind.THREAD_SYMMETRIC
    return GuardKind.UNIFORM


def _classify(p: Poly, rel: str) -> Guard:
    """Classify a normalized condition ``p REL 0``."""
    syms = p.symbols()
    kind = _classify_symbols(syms)
    if kind is GuardKind.BLOCK_VARIANT and rel in ("lt", "le"):
        # tail pattern: linear in tid/bid, positive thread and block
        # coefficients, coefficients themselves free of tid/bid
        idx_syms = TID_SYMBOLS | CTAID_SYMBOLS
        if (syms & TID_SYMBOLS) and p.is_linear_in(idx_syms):
            tid_pos = all(p.coeff(s).provably_positive() for s in syms & TID_SYMBOLS)
            bid_pos = all(
                p.coeff(s).provably_positive() for s in syms & CTAID_SYMBOLS
            )
            clean = all(
                not (p.coeff(s).symbols() & idx_syms) for s in syms & idx_syms
            )
            if tid_pos and bid_pos and clean:
                kind = GuardKind.TAIL
    return Guard(kind, p, rel)


def classify_guard(cond: Expr, env: dict[str, Poly | None]) -> Guard:
    """Classify a single (non-conjunctive) condition expression."""
    if isinstance(cond, UnOp) and cond.op == "!":
        return classify_guard(cond.operand, env).negated()
    if isinstance(cond, BinOp) and cond.op in ("<", "<=", ">", ">=", "==", "!="):
        lhs = eval_sym(cond.lhs, env)
        rhs = eval_sym(cond.rhs, env)
        if lhs is None or rhs is None:
            return Guard(GuardKind.OPAQUE)
        if cond.op in ("<", ">"):
            p = (lhs - rhs) if cond.op == "<" else (rhs - lhs)
            return _classify(p, "lt")
        if cond.op in ("<=", ">="):
            p = (lhs - rhs) if cond.op == "<=" else (rhs - lhs)
            return _classify(p, "le")
        return _classify(lhs - rhs, "eq" if cond.op == "==" else "ne")
    # plain truthy value used as a condition: nonzero test
    p = eval_sym(cond, env)
    if p is None:
        return Guard(GuardKind.OPAQUE)
    return _classify(p, "ne")


def guards_of_condition(cond: Expr, env: dict[str, Poly | None]) -> list[Guard]:
    """Decompose a condition into a conjunction of classified guards.

    ``a && b`` splits into the guards of ``a`` and ``b``.  Disjunctions
    cannot be decomposed into independent conjuncts; they fold into a
    single unevaluable guard of the worst involved kind (TAIL degrades to
    BLOCK_VARIANT since a union of tail regions is not tail-shaped).
    """
    if isinstance(cond, BinOp) and cond.op == "&&":
        return guards_of_condition(cond.lhs, env) + guards_of_condition(cond.rhs, env)
    if isinstance(cond, BinOp) and cond.op == "||":
        parts = guards_of_condition(cond.lhs, env) + guards_of_condition(
            cond.rhs, env
        )
        worst = max((g.kind for g in parts), key=_SEVERITY.index)
        if worst is GuardKind.TAIL:
            worst = GuardKind.BLOCK_VARIANT
        return [Guard(worst)]
    return [classify_guard(cond, env)]


def negate_conjunction(guards: list[Guard]) -> list[Guard]:
    """Negate ``g1 && g2 && ...`` — a disjunction of negations.

    A single guard negates exactly; multiple guards fold into one
    unevaluable guard of the worst negated kind (the else-branch of a
    multi-conjunct condition is rarely on the distributable path anyway).
    """
    if len(guards) == 1:
        return [guards[0].negated()]
    negs = [g.negated() for g in guards]
    worst = max((g.kind for g in negs), key=_SEVERITY.index)
    if worst is GuardKind.TAIL:
        worst = GuardKind.BLOCK_VARIANT
    return [Guard(worst)]

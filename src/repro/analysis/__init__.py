"""Compiler analyses: the Allgather distributable analysis and support.

The paper's core contribution (section 6): decide statically whether a
GPU kernel's blocks can be partitioned across CPU nodes such that a
single balanced-in-place Allgather restores memory consistency, and emit
the metadata (``tail_divergent``, ``mem_ptr``, ``unit_size``) the host
code generator and runtime consume.
"""

from repro.analysis.affine import Poly, eval_sym, param_symbol
from repro.analysis.distributable import (
    KernelAnalysis,
    analyze_kernel,
    finalize_plan,
)
from repro.analysis.guards import (
    Guard,
    GuardKind,
    classify_guard,
    guards_of_condition,
)
from repro.analysis.metadata import (
    BufferPlan,
    DistributionPlan,
    KernelMetadata,
    Verdict,
)
from repro.analysis.writes import LoopInfo, WriteRecord, collect_writes

__all__ = [
    "Poly", "eval_sym", "param_symbol",
    "Guard", "GuardKind", "classify_guard", "guards_of_condition",
    "LoopInfo", "WriteRecord", "collect_writes",
    "KernelAnalysis", "analyze_kernel", "finalize_plan",
    "KernelMetadata", "BufferPlan", "DistributionPlan", "Verdict",
]

"""Multivariate integer polynomials and symbolic expression evaluation.

The Allgather distributable analysis (paper section 6.2) reasons about
write indices as *affine functions* of the thread index and the block
index, with coefficients that may involve the block size, grid size and
kernel scalar parameters.  We represent such values as multivariate
polynomials over a symbol alphabet:

========== =====================================================
``tid.x``  threadIdx.x (likewise ``.y``/``.z``)
``ctaid.x`` blockIdx.x
``ntid.x`` blockDim.x
``nctaid.x`` gridDim.x
``param:N`` kernel scalar parameter ``N``
``loop:v#k`` the k-th analyzed loop's induction variable ``v``
========== =====================================================

A polynomial is exact: anything the symbolic evaluator cannot express
exactly (integer division with a non-dividing divisor, modulo, values
loaded from memory, data-dependent control flow merges) evaluates to
``None``, which downstream analyses treat as "not analyzable" — the
conditions in section 6.2 are sufficient, not necessary, so unknowns
conservatively fail them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Const,
    Expr,
    Load,
    Param,
    Select,
    SReg,
    SRegKind,
    UnOp,
    Var,
)

__all__ = [
    "Poly",
    "SREG_SYMBOL",
    "TID_SYMBOLS",
    "CTAID_SYMBOLS",
    "NTID_SYMBOLS",
    "NCTAID_SYMBOLS",
    "eval_sym",
    "param_symbol",
]

Monomial = tuple[tuple[str, int], ...]  # sorted ((symbol, power), ...)

SREG_SYMBOL: dict[SRegKind, str] = {
    SRegKind.TID_X: "tid.x",
    SRegKind.TID_Y: "tid.y",
    SRegKind.TID_Z: "tid.z",
    SRegKind.CTAID_X: "ctaid.x",
    SRegKind.CTAID_Y: "ctaid.y",
    SRegKind.CTAID_Z: "ctaid.z",
    SRegKind.NTID_X: "ntid.x",
    SRegKind.NTID_Y: "ntid.y",
    SRegKind.NTID_Z: "ntid.z",
    SRegKind.NCTAID_X: "nctaid.x",
    SRegKind.NCTAID_Y: "nctaid.y",
    SRegKind.NCTAID_Z: "nctaid.z",
}

TID_SYMBOLS = frozenset({"tid.x", "tid.y", "tid.z"})
CTAID_SYMBOLS = frozenset({"ctaid.x", "ctaid.y", "ctaid.z"})
NTID_SYMBOLS = frozenset({"ntid.x", "ntid.y", "ntid.z"})
NCTAID_SYMBOLS = frozenset({"nctaid.x", "nctaid.y", "nctaid.z"})


def param_symbol(name: str) -> str:
    return f"param:{name}"


class Poly:
    """An immutable multivariate polynomial with integer coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: dict[Monomial, int] | None = None):
        t = {m: c for m, c in (terms or {}).items() if c != 0}
        object.__setattr__(self, "terms", t)

    def __setattr__(self, *a):  # immutability guard
        raise AttributeError("Poly is immutable")

    # -- constructors ---------------------------------------------------
    @staticmethod
    def const(c: int) -> "Poly":
        return Poly({(): int(c)}) if c else Poly()

    @staticmethod
    def sym(name: str) -> "Poly":
        return Poly({((name, 1),): 1})

    # -- queries ----------------------------------------------------------
    def is_zero(self) -> bool:
        return not self.terms

    def is_constant(self) -> bool:
        return all(m == () for m in self.terms)

    def constant_value(self) -> int:
        if not self.is_constant():
            raise AnalysisError(f"{self} is not constant")
        return self.terms.get((), 0)

    def symbols(self) -> frozenset[str]:
        return frozenset(s for m in self.terms for s, _ in m)

    def degree(self, symbol: str) -> int:
        deg = 0
        for m in self.terms:
            for s, p in m:
                if s == symbol:
                    deg = max(deg, p)
        return deg

    def is_linear_in(self, symbols: frozenset[str] | set[str]) -> bool:
        """At most degree 1 overall in the given symbol set (no products
        of two of them, no squares)."""
        for m in self.terms:
            total = sum(p for s, p in m if s in symbols)
            if total > 1:
                return False
        return True

    def coeff(self, symbol: str) -> "Poly":
        """The (polynomial) coefficient of ``symbol`` — requires the
        polynomial to be at most linear in ``symbol``."""
        if self.degree(symbol) > 1:
            raise AnalysisError(f"{self} is nonlinear in {symbol}")
        out: dict[Monomial, int] = {}
        for m, c in self.terms.items():
            rest = tuple((s, p) for s, p in m if s != symbol)
            if len(rest) != len(m):  # contained symbol^1
                out[rest] = out.get(rest, 0) + c
        return Poly(out)

    def drop(self, symbols: frozenset[str] | set[str]) -> "Poly":
        """The part of the polynomial with none of the given symbols."""
        return Poly(
            {m: c for m, c in self.terms.items() if not any(s in symbols for s, _ in m)}
        )

    def provably_positive(self, positive_symbols: bool = True) -> bool:
        """True if the polynomial is certainly > 0 assuming every symbol
        takes a positive value (block/grid dims are >= 1; size parameters
        are assumed positive, as the paper implicitly does)."""
        if not self.terms:
            return False
        if not positive_symbols:
            return self.is_constant() and self.constant_value() > 0
        return all(c > 0 for c in self.terms.values())

    def provably_nonnegative(self) -> bool:
        return not self.terms or all(c > 0 for c in self.terms.values())

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "Poly") -> "Poly":
        out = dict(self.terms)
        for m, c in other.terms.items():
            out[m] = out.get(m, 0) + c
        return Poly(out)

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other)

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __mul__(self, other: "Poly") -> "Poly":
        out: dict[Monomial, int] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                m = _mul_monomials(m1, m2)
                out[m] = out.get(m, 0) + c1 * c2
        return Poly(out)

    def scale(self, k: int) -> "Poly":
        return Poly({m: c * k for m, c in self.terms.items()})

    def div_exact(self, k: int) -> "Poly | None":
        """Divide by a nonzero integer constant if it divides every
        coefficient; otherwise ``None`` (the value is not polynomial)."""
        if k == 0:
            return None
        if all(c % k == 0 for c in self.terms.values()):
            return Poly({m: c // k for m, c in self.terms.items()})
        return None

    def subs(self, symbol: str, value: "Poly") -> "Poly":
        """Substitute a polynomial for a symbol."""
        out = Poly()
        for m, c in self.terms.items():
            term = Poly.const(c)
            for s, p in m:
                factor = value if s == symbol else Poly.sym(s)
                for _ in range(p):
                    term = term * factor
            out = out + term
        return out

    # -- numeric evaluation -------------------------------------------------
    def eval(self, values: dict[str, object]):
        """Evaluate numerically; symbol values may be ints or NumPy arrays
        (vectorized evaluation over thread lanes)."""
        total = None
        for m, c in self.terms.items():
            term = np.int64(c)
            for s, p in m:
                if s not in values:
                    raise AnalysisError(f"no value for symbol {s!r} in {self}")
                v = np.asarray(values[s]).astype(np.int64, copy=False)
                for _ in range(p):
                    term = term * v
            total = term if total is None else total + term
        return np.int64(0) if total is None else total

    # -- comparisons / display ----------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Poly) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for m, c in sorted(self.terms.items()):
            syms = "*".join(s if p == 1 else f"{s}^{p}" for s, p in m)
            if not syms:
                parts.append(str(c))
            elif c == 1:
                parts.append(syms)
            elif c == -1:
                parts.append(f"-{syms}")
            else:
                parts.append(f"{c}*{syms}")
        return " + ".join(parts).replace("+ -", "- ")


def _mul_monomials(a: Monomial, b: Monomial) -> Monomial:
    powers: dict[str, int] = {}
    for s, p in a + b:
        powers[s] = powers.get(s, 0) + p
    return tuple(sorted(powers.items()))


# ---------------------------------------------------------------------------
# symbolic expression evaluation
# ---------------------------------------------------------------------------

def eval_sym(e: Expr, env: dict[str, "Poly | None"]) -> Poly | None:
    """Evaluate an IR expression to a polynomial, or ``None`` if the value
    cannot be expressed exactly.

    ``env`` maps local variable names to their symbolic values (``None``
    marks a variable with an unanalyzable value).  Loads, intrinsic calls,
    float arithmetic and inexact integer division all evaluate to ``None``.
    """
    if isinstance(e, Const):
        if e.type.is_float:
            # float constants appear in stored values, never in sound
            # index expressions; an integral float is still exact
            return Poly.const(int(e.value)) if float(e.value).is_integer() else None
        return Poly.const(int(e.value))
    if isinstance(e, SReg):
        return Poly.sym(SREG_SYMBOL[e.kind])
    if isinstance(e, Param):
        if e.is_pointer:
            return None
        if e.type.is_float:
            return None
        return Poly.sym(param_symbol(e.name))
    if isinstance(e, Var):
        if e.is_pointer:
            return None
        return env.get(e.name)
    if isinstance(e, Cast):
        # integral casts are value-preserving for in-range indices;
        # casting to float leaves us unable to reason exactly
        if e.type.is_float:
            return None
        return eval_sym(e.value, env)
    if isinstance(e, UnOp):
        if e.op == "-":
            v = eval_sym(e.operand, env)
            return None if v is None else -v
        return None
    if isinstance(e, BinOp):
        le = eval_sym(e.lhs, env)
        re_ = eval_sym(e.rhs, env)
        if le is None or re_ is None:
            return None
        op = e.op
        if op == "+":
            return le + re_
        if op == "-":
            return le - re_
        if op == "*":
            return le * re_
        if op == "/":
            if e.dtype.is_float:
                return None
            if re_.is_constant():
                return le.div_exact(re_.constant_value())
            return None
        if op == "%":
            # exact only when the dividend is a constant
            if le.is_constant() and re_.is_constant() and re_.constant_value() != 0:
                a, b = le.constant_value(), re_.constant_value()
                q = int(a / b) if b != 0 else 0  # C truncation
                return Poly.const(a - q * b)
            return None
        if op == "<<":
            if re_.is_constant() and re_.constant_value() >= 0:
                return le.scale(1 << re_.constant_value())
            return None
        if op == ">>":
            if re_.is_constant() and re_.constant_value() >= 0:
                return le.div_exact(1 << re_.constant_value())
            return None
        return None  # comparisons / bitwise: not index-valued
    if isinstance(e, (Load, Call, Select)):
        return None
    return None  # pragma: no cover

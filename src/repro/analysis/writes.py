"""Collection of global-memory write sites with symbolic context.

This pass walks a kernel and produces one :class:`WriteRecord` per store
or atomic that targets GPU *global* memory, carrying:

* the write index as a polynomial over thread/block indices, loop
  induction variables and scalar parameters (``None`` when indirect or
  otherwise unanalyzable — e.g. an index loaded from memory),
* the classified guards of every enclosing conditional, including
  implicit guards contributed by guarded early returns
  (``if (id >= n) return;``),
* the enclosing counted loops (so multi-element-per-thread writes can be
  footprint-enumerated at launch), and
* structural flags (atomic, inside a ``while``/data-dependent loop).

Shared- and local-memory writes never require cross-node communication
(paper footnote 1) and are not collected.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.analysis.affine import (
    CTAID_SYMBOLS,
    NCTAID_SYMBOLS,
    NTID_SYMBOLS,
    TID_SYMBOLS,
    Poly,
    eval_sym,
)
from repro.analysis.guards import Guard, GuardKind, guards_of_condition, negate_conjunction
from repro.ir.expr import Param
from repro.ir.stmt import (
    Assign,
    Atomic,
    Break,
    Continue,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    Store,
    While,
)
from repro.ir.types import AddressSpace
from repro.ir.visitor import iter_stmts

__all__ = ["LoopInfo", "WriteRecord", "collect_writes"]

#: Symbols a loop bound may mention and still be "analyzable": the loop
#: then has the same trip count for every thread of every block.
_INVARIANT_OK = NTID_SYMBOLS | NCTAID_SYMBOLS


@dataclass(frozen=True)
class LoopInfo:
    """An enclosing counted loop of a write site."""

    symbol: str  # polynomial symbol of the induction variable
    var: str
    start: Poly | None
    stop: Poly | None
    step: Poly | None
    has_break: bool  # loop body contains break/continue

    @property
    def analyzable(self) -> bool:
        """Trip schedule known, identical for all threads and blocks."""
        if self.has_break:
            return False
        for p in (self.start, self.stop, self.step):
            if p is None:
                return False
            extra = p.symbols() - _INVARIANT_OK
            if any(s in TID_SYMBOLS or s in CTAID_SYMBOLS for s in extra):
                return False
            if any(s.startswith("loop:") for s in extra):
                # nested loop bounds depending on an outer induction
                # variable give triangular footprints; out of scope
                return False
        return True


@dataclass(frozen=True)
class WriteRecord:
    """One global-memory write site with its full symbolic context."""

    buffer: str
    elem_size: int
    index: Poly | None
    guards: tuple[Guard, ...]
    loops: tuple[LoopInfo, ...]
    is_atomic: bool
    in_while: bool

    @property
    def analyzable_loops(self) -> bool:
        return all(lp.analyzable for lp in self.loops)


class _Collector:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.records: list[WriteRecord] = []
        self._loop_counter = itertools.count()

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _terminates(body: list[Stmt]) -> bool:
        """Whether control cannot fall out of the bottom of ``body``."""
        return any(isinstance(s, Return) for s in body)

    def _record(
        self,
        stmt: Store | Atomic,
        env: dict[str, Poly | None],
        guards: tuple[Guard, ...],
        loops: tuple[LoopInfo, ...],
        in_while: bool,
    ) -> None:
        if stmt.ptr_type.space is not AddressSpace.GLOBAL:
            return
        buffer = stmt.ptr.name if isinstance(stmt.ptr, Param) else None
        if buffer is None:  # pragma: no cover - pointers are params or shared
            return
        self.records.append(
            WriteRecord(
                buffer=buffer,
                elem_size=stmt.ptr_type.elem.size,
                index=eval_sym(stmt.index, env),
                guards=guards,
                loops=loops,
                is_atomic=isinstance(stmt, Atomic),
                in_while=in_while,
            )
        )

    # -- the walk ----------------------------------------------------------
    def walk(
        self,
        body: list[Stmt],
        env: dict[str, Poly | None],
        guards: tuple[Guard, ...],
        loops: tuple[LoopInfo, ...],
        in_while: bool,
    ) -> dict[str, Poly | None]:
        for s in body:
            if isinstance(s, Assign):
                env[s.name] = eval_sym(s.value, env)
            elif isinstance(s, (Store, Atomic)):
                self._record(s, env, guards, loops, in_while)
                if isinstance(s, Atomic) and s.result is not None:
                    env[s.result] = None
            elif isinstance(s, If):
                gs = tuple(guards_of_condition(s.cond, env))
                neg = tuple(negate_conjunction(list(gs)))
                then_env = self.walk(
                    s.then_body, dict(env), guards + gs, loops, in_while
                )
                else_env = self.walk(
                    s.else_body, dict(env), guards + neg, loops, in_while
                )
                then_ret = self._terminates(s.then_body)
                else_ret = self._terminates(s.else_body)
                if then_ret and not else_ret:
                    # only the else path falls through: its guards hold
                    guards = guards + neg
                    env = else_env
                elif else_ret and not then_ret:
                    guards = guards + gs
                    env = then_env
                elif then_ret and else_ret:
                    break  # nothing after is reachable
                else:
                    env = _merge_envs(env, then_env, else_env)
            elif isinstance(s, For):
                n = next(self._loop_counter)
                symbol = f"loop:{s.var}#{n}"
                has_break = any(
                    isinstance(t, (Break, Continue)) for t in iter_stmts(s.body)
                )
                info = LoopInfo(
                    symbol=symbol,
                    var=s.var,
                    start=eval_sym(s.start, env),
                    stop=eval_sym(s.stop, env),
                    step=eval_sym(s.step, env),
                    has_break=has_break,
                )
                inner = dict(env)
                # variables mutated by the loop body have iteration-
                # dependent values; nothing sound can be assumed
                for name in _assigned_names(s.body):
                    inner[name] = None
                inner[s.var] = Poly.sym(symbol)
                self.walk(s.body, inner, guards, loops + (info,), in_while)
                for name in _assigned_names(s.body):
                    env[name] = None
                env.pop(s.var, None)
            elif isinstance(s, While):
                inner = dict(env)
                for name in _assigned_names(s.body):
                    inner[name] = None
                self.walk(s.body, inner, guards, loops, in_while=True)
                for name in _assigned_names(s.body):
                    env[name] = None
            elif isinstance(s, Return):
                break  # nothing after is reachable on this path
            elif isinstance(s, (Break, Continue)):
                break
            # SyncThreads / AllocShared: no effect on the write analysis
        return env


def _assigned_names(body: list[Stmt]) -> set[str]:
    names: set[str] = set()
    for s in iter_stmts(body):
        if isinstance(s, Assign):
            names.add(s.name)
        elif isinstance(s, Atomic) and s.result is not None:
            names.add(s.result)
        elif isinstance(s, For):
            names.add(s.var)
    return names


def _merge_envs(
    pre: dict[str, Poly | None],
    a: dict[str, Poly | None],
    b: dict[str, Poly | None],
) -> dict[str, Poly | None]:
    """Join point of an if/else: keep values provably equal on both paths."""
    out: dict[str, Poly | None] = {}
    for name in set(a) | set(b):
        va = a.get(name, pre.get(name))
        vb = b.get(name, pre.get(name))
        out[name] = va if (va is not None and va == vb) else None
    return out


def collect_writes(kernel: Kernel) -> list[WriteRecord]:
    """Collect every global-memory write site of ``kernel``."""
    c = _Collector(kernel)
    c.walk(list(kernel.body), {}, (), (), in_while=False)
    return c.records

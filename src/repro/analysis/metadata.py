"""Analysis products: compile-time metadata and launch-time plans.

:class:`KernelMetadata` mirrors the metadata block of the paper's
Figure 6 — ``tail_divergent``, the memory pointers that need
communication (``mem_ptr``) and the per-block write size (``unit_size``,
symbolic at compile time).  :class:`DistributionPlan` is its launch-time
concretization: which blocks each node executes in the partial phase,
which blocks are callback blocks, and the exact byte regions the
balanced-in-place Allgather must exchange.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.affine import Poly

__all__ = ["Verdict", "KernelMetadata", "BufferPlan", "DistributionPlan"]


class Verdict(enum.Enum):
    """Static analysis outcome (paper section 6.2).

    ``DISTRIBUTABLE`` is the non-trivial verdict: the kernel's blocks can
    be partitioned across nodes with balanced-in-place Allgather
    consistency.  ``NOT_DISTRIBUTABLE`` corresponds to the paper's
    *trivial* case: every block runs replicated on every node (always
    correct, never communicates).
    """

    DISTRIBUTABLE = "distributable"
    NOT_DISTRIBUTABLE = "not-distributable"


@dataclass
class KernelMetadata:
    """Compile-time result of the Allgather distributable analysis."""

    kernel_name: str
    verdict: Verdict
    reasons: list[str] = field(default_factory=list)
    #: global buffers requiring communication (paper: ``mem_ptr``)
    mem_ptrs: list[str] = field(default_factory=list)
    #: symbolic elements written per block, per buffer (paper:
    #: ``unit_size``; multiply by element size for bytes)
    unit_elems: dict[str, Poly] = field(default_factory=dict)
    elem_sizes: dict[str, int] = field(default_factory=dict)
    #: whether any write is guarded by a tail-divergent bound check
    tail_divergent: bool = False

    @property
    def distributable(self) -> bool:
        return self.verdict is Verdict.DISTRIBUTABLE

    def describe(self) -> str:
        """Human-readable summary mirroring Figure 6's metadata block."""
        lines = [f"kernel {self.kernel_name}: {self.verdict.value}"]
        if self.distributable:
            lines.append(f"  tail_divergent: {self.tail_divergent}")
            lines.append(f"  mem_ptr: {self.mem_ptrs}")
            for buf in self.mem_ptrs:
                unit = self.unit_elems[buf]
                lines.append(
                    f"  unit_size[{buf}]: ({unit}) * {self.elem_sizes[buf]} bytes"
                )
        for r in self.reasons:
            lines.append(f"  note: {r}")
        return "\n".join(lines)


@dataclass(frozen=True)
class BufferPlan:
    """Launch-time communication plan for one written global buffer."""

    buffer: str
    elem_size: int
    unit_elems: int  # elements written per regular block
    base_elem: int  # first element written by block 0

    def node_slice(self, rank: int, p_size: int) -> slice:
        """Element range written by ``rank`` in the partial phase."""
        lo = self.base_elem + rank * p_size * self.unit_elems
        return slice(lo, lo + p_size * self.unit_elems)

    def region(self, executed_blocks: int) -> slice:
        """Element range covered by the Allgather."""
        lo = self.base_elem
        return slice(lo, lo + executed_blocks * self.unit_elems)


@dataclass(frozen=True)
class DistributionPlan:
    """Concrete three-phase execution plan for one launch.

    ``replicated`` plans execute every block on every node with no
    communication — the correct fallback whenever the launch-time checks
    cannot confirm the distributable conditions.
    """

    num_blocks: int
    num_nodes: int
    replicated: bool
    reason: str | None = None
    #: number of leading blocks that fully pass every tail guard
    full_blocks: int = 0
    #: blocks per node in the partial phase
    p_size: int = 0
    buffers: tuple[BufferPlan, ...] = ()

    @property
    def executed_blocks(self) -> int:
        """Blocks executed (across all nodes) in the partial phase."""
        return 0 if self.replicated else self.p_size * self.num_nodes

    @property
    def callback_blocks(self) -> range:
        """Blocks executed by every node in the callback phase."""
        if self.replicated:
            return range(0, self.num_blocks)
        return range(self.executed_blocks, self.num_blocks)

    def node_blocks(self, rank: int) -> range:
        """Blocks executed by ``rank`` in the partial phase."""
        if self.replicated:
            return range(0)
        return range(rank * self.p_size, (rank + 1) * self.p_size)

    @property
    def comm_bytes(self) -> int:
        """Total payload of the balanced-in-place Allgather."""
        if self.replicated:
            return 0
        return sum(
            b.unit_elems * b.elem_size * self.executed_blocks for b in self.buffers
        )

    def describe(self) -> str:
        if self.replicated:
            return (
                f"replicated plan: {self.num_blocks} blocks on every node"
                + (f" ({self.reason})" if self.reason else "")
            )
        lines = [
            f"distributed plan: {self.num_nodes} nodes x {self.p_size} blocks, "
            f"{len(self.callback_blocks)} callback blocks",
        ]
        for b in self.buffers:
            lines.append(
                f"  allgather {b.buffer}: unit {b.unit_elems} elems x "
                f"{b.elem_size} B, base {b.base_elem}"
            )
        return "\n".join(lines)

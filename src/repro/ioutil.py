"""Small filesystem helpers shared across persistence layers.

:func:`atomic_write_text` is the text twin of the ``.rckp`` writer's
temp-file + :func:`os.replace` idiom (see
:mod:`repro.ops.checkpoint`): readers either see the complete previous
file or the complete new one, never a torn intermediate.  The serving
loop relies on this — many concurrent jobs share one on-disk
``TuningCache`` / ``CompileCache`` and each save must be all-or-nothing.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically; returns the path written.

    The bytes land in a sibling ``*.tmp`` file first and are moved over
    the target with :func:`os.replace` (atomic on POSIX and Windows for
    same-directory renames).  On any failure the temp file is removed
    and the previous contents of ``path`` are left untouched.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target

"""Observability overhead: cost of tracing, metrics and profiler hooks.

Runs KMeans and the composed BERT encoder layer four ways —

* **baseline**: metrics registry disabled, tracing off (approximates the
  pre-observability build: every hook short-circuits);
* **off-path**: metrics on (the default), tracing off, profiling off —
  the configuration every ordinary run pays for;
* **traced**: metrics on, tracing on, spans collected;
* **profiled**: metrics on, tracing off, per-line profiling on.

Three hard gates:

* the off path must do < 2% more work than the hooks-disabled baseline.
  "Work" is the deterministic count of Python/C function calls
  (``sys.setprofile``): identical on every machine and immune to the
  multi-percent wall-clock noise of shared CI runners, it measures
  exactly what the zero-overhead-when-disabled promise claims — the
  extra calls the hooks add to an untraced run.  The profiler's hook is
  part of this budget: disabled, it is two attribute checks on the
  statement-dispatch path, zero extra calls;
* traced and untraced runs must produce bit-identical *modeled* times;
* profiled and unprofiled runs must produce bit-identical modeled times
  — attribution mirrors counts, it never changes them.

The **serving** row extends the same contract to the serving
observatory (DESIGN.md §15): its "traced" configuration turns on the
fleet ledger plus an SLO monitor, must leave the simulated makespan
bit-identical, and — unlike opt-in launch tracing — must itself fit in
the 2% call budget, because the flight recorder is meant to be
affordable always-on.

Wall-clock is still measured and reported (min over paired rounds run
in rotating order, plus the median per-round paired delta) but is
informational: on a noisy box the medians swing several percent in
either direction, which is noise, not hook cost.
"""

from __future__ import annotations

import gc
import statistics
import sys
import time

import numpy as np

from repro.bench.figures import FigureResult
from repro.bench.harness import run_on_cucc
from repro.cluster import Cluster, make_cluster
from repro.hw import SIMD_FOCUSED_NODE
from repro.obs import METRICS
from repro.runtime import CuCCRuntime
from repro.workloads import PERF_WORKLOADS
from repro.workloads.bert_app import BertLayer, BertWeights

NODES = 4
#: wall-clock measurement rounds per workload (informational); each
#: round samples all three configurations back to back
REPS = 5
#: allowed extra work (function calls) on the tracing-off path vs. a
#: build with every observability hook disabled
OFF_PATH_BUDGET = 0.02


def _kmeans_case(trace: bool, profile: bool = False) -> float:
    spec = PERF_WORKLOADS["KMeans"]("small", seed=0)
    res = run_on_cucc(
        spec, make_cluster("simd-focused", NODES), trace=trace, profile=profile
    )
    return res.runtime.sim_time


def _bert_case(trace: bool, profile: bool = False) -> float:
    w = BertWeights.create(32, 64, seed=5)
    tokens = np.random.default_rng(6).standard_normal((32, 32)).astype(
        np.float32
    )
    rt = CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, NODES), trace=trace,
                     profile=profile)
    BertLayer(rt, 32, w).forward(tokens)
    return rt.sim_time


def _serve_case(trace: bool, profile: bool = False) -> float:
    """Serving-fleet observability: ``trace`` turns on the observatory
    ledger plus a deliberately-breaching SLO monitor (the heaviest hook
    path: every placement records events and feeds the burn windows).
    Per-line profiling has no serving analogue, so ``profile`` is
    ignored and that leg trivially passes its identity gate."""
    from repro.serve import ServeConfig, serve_requests, synth_requests

    reqs = synth_requests("FIR:2,KMeans:1,Transpose:1", rate=2e6, jobs=8,
                          nodes=2, size="small", seed=0)
    rep = serve_requests(reqs, ServeConfig(
        nodes=6,
        observatory=trace,
        slo="wait<=1e-9,latency<=1e-9" if trace else None,
    ))
    return rep.stats.makespan_s


def _netflow_case(trace: bool, profile: bool = False) -> float:
    """Network observatory (DESIGN.md §16): ``trace`` attaches the
    per-link flow ledger to a fat-tree serving run — the topology where
    it does the most work (uplink shares, contention attribution).  Like
    the observatory, netflow claims always-affordable: bit-identical
    makespan and < 2% extra calls.  ``profile`` is ignored."""
    from repro.serve import ServeConfig, serve_requests, synth_requests

    reqs = synth_requests("FIR:2,KMeans:1,Transpose:1", rate=2e6, jobs=8,
                          nodes=2, size="small", seed=0)
    rep = serve_requests(reqs, ServeConfig(
        nodes=6, topology="fat-tree:2", netflow=trace,
    ))
    return rep.stats.makespan_s


CASES = [("kmeans", _kmeans_case), ("bert_app", _bert_case),
         ("serving", _serve_case), ("netflow", _netflow_case)]

#: per-case budget for the hooks-ON path: extra calls vs. the *off*
#: path (metrics on, tracing off — the default configuration), i.e.
#: the marginal cost of switching the hooks on.  Only serving carries
#: one: its "on" configuration (observatory + SLO monitor) must stay
#: under 2% extra work — the tentpole's always-affordable claim; the
#: netflow row makes the same claim for the flow ledger.
#: Tracing/profiling for the launch cases is opt-in telemetry with no
#: such promise.
ON_BUDGETS = {"serving": 0.02, "netflow": 0.02}


def _count_calls(fn) -> int:
    """Python + C function calls executed by ``fn()`` — deterministic
    for a fixed seed, so it isolates hook cost from machine noise."""
    n = 0

    def prof(frame, event, arg):
        nonlocal n
        if event in ("call", "c_call"):
            n += 1

    sys.setprofile(prof)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return n


def _sample(fn) -> tuple[float, float]:
    """One wall-clock sample with collector noise excluded: collect
    leftover garbage first, then time the call with automatic GC off
    (spans allocated by a traced run must not bill a later sample)."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sim = fn()
        return time.perf_counter() - t0, sim
    finally:
        gc.enable()


def _measure(case) -> dict:
    """Deterministic call counts plus REPS wall-clock rounds over the
    three configurations in rotating order."""

    def run_base():
        METRICS.enabled = False
        try:
            return _sample(lambda: case(False))
        finally:
            METRICS.enabled = True

    def run_off():
        return _sample(lambda: case(False))

    def run_on():
        return _sample(lambda: case(True))

    def run_prof():
        return _sample(lambda: case(False, True))

    # warm every path once (imports, parser caches, allocator)
    case(False)
    case(True)
    case(False, True)

    METRICS.enabled = False
    try:
        calls_base = _count_calls(lambda: case(False))
    finally:
        METRICS.enabled = True
    calls_off = _count_calls(lambda: case(False))
    calls_on = _count_calls(lambda: case(True))
    calls_prof = _count_calls(lambda: case(False, True))

    configs = [("base", run_base), ("off", run_off), ("on", run_on),
               ("prof", run_prof)]
    best = {k: float("inf") for k, _ in configs}
    sims: dict = {}
    off_deltas = []
    for r in range(REPS):
        times = {}
        for k, run in configs[r % 4:] + configs[: r % 4]:  # rotate order
            times[k], sims[k] = run()
            best[k] = min(best[k], times[k])
        off_deltas.append(times["off"] / times["base"] - 1.0)
    return {
        "best": best,
        "sims": sims,
        "calls": {"base": calls_base, "off": calls_off, "on": calls_on,
                  "prof": calls_prof},
        "off_wall_delta": statistics.median(off_deltas),
    }


def obs_overhead() -> FigureResult:
    rows = []
    failures = []
    for name, case in CASES:
        m = _measure(case)
        sim_off, sim_on = m["sims"]["off"], m["sims"]["on"]
        sim_prof = m["sims"]["prof"]
        if sim_off != sim_on:
            failures.append(
                f"{name}: traced sim time {sim_on!r} != untraced {sim_off!r}"
            )
        if sim_off != sim_prof:
            failures.append(
                f"{name}: profiled sim time {sim_prof!r} != unprofiled "
                f"{sim_off!r}"
            )
        calls = m["calls"]
        off_reg = calls["off"] / calls["base"] - 1.0
        if off_reg > OFF_PATH_BUDGET:
            failures.append(
                f"{name}: tracing-off path does {off_reg * 100:.2f}% more "
                f"work ({calls['off']} vs {calls['base']} calls) than the "
                f"hooks-disabled baseline "
                f"(budget {OFF_PATH_BUDGET * 100:.0f}%)"
            )
        on_budget = ON_BUDGETS.get(name)
        on_reg = calls["on"] / calls["off"] - 1.0
        if on_budget is not None and on_reg > on_budget:
            failures.append(
                f"{name}: switching the hooks on adds {on_reg * 100:.2f}% "
                f"more work ({calls['on']} vs {calls['off']} calls) over "
                f"the default tracing-off path "
                f"(budget {on_budget * 100:.0f}%)"
            )
        rows.append(
            [
                name,
                f"{m['best']['base'] * 1e3:.1f}",
                f"{m['best']['off'] * 1e3:.1f}",
                f"{off_reg * 100:+.3f}%",
                f"{m['off_wall_delta'] * 100:+.2f}%",
                f"{m['best']['on'] * 1e3:.1f}",
                f"{(calls['on'] / calls['base'] - 1.0) * 100:+.2f}%",
                f"{m['best']['prof'] * 1e3:.1f}",
                f"{(calls['prof'] / calls['base'] - 1.0) * 100:+.2f}%",
                "yes" if sim_off == sim_on == sim_prof else "NO",
            ]
        )
    if failures:
        raise AssertionError("; ".join(failures))
    return FigureResult(
        figure="obs-overhead",
        title=f"observability overhead ({NODES} nodes; calls are "
        f"deterministic, wall-clock min of {REPS} paired rounds)",
        headers=[
            "workload", "baseline (ms)", "trace off (ms)", "off calls",
            "off wall", "traced (ms)", "traced calls", "profiled (ms)",
            "prof calls", "sim identical",
        ],
        rows=rows,
        notes=[
            "baseline disables the metrics registry (approximates the "
            "pre-observability build); 'calls' columns are deterministic "
            "function-call deltas vs. baseline, 'off wall' is the median "
            "per-round paired wall-clock delta (informational)",
            f"gate: tracing-off path (profiler also off) within "
            f"{OFF_PATH_BUDGET * 100:.0f}% extra calls of baseline; traced "
            "and profiled runs bit-identical in simulated time",
            "serving's traced configuration is the observatory + SLO "
            "monitor, gated to add < 2% calls over the tracing-off path "
            "(always-on promise)",
        ],
    )


def test_obs_overhead(benchmark, emit, bench_size):
    result = benchmark.pedantic(obs_overhead, rounds=1, iterations=1)
    emit(result, "obs_overhead")

"""Library micro-benchmarks: wall-clock throughput of the core components.

Unlike the ``bench_fig*`` files (which regenerate the paper's *simulated*
results), these measure the reproduction's own machinery — interpreter
lanes/second, compiler analysis latency, communicator copy bandwidth —
so regressions in the substrate show up in ``--benchmark-only`` runs.
"""

import numpy as np

from repro.analysis import analyze_kernel, finalize_plan
from repro.cluster import Cluster
from repro.frontend.parser import parse_kernel
from repro.hw import SIMD_FOCUSED_NODE
from repro.interp import LaunchConfig, run_grid
from repro.workloads.fir import CUDA_SOURCE as FIR_SRC

VEC = """
__global__ void vec_mad(const float *x, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = x[id] * 2.0f + 1.0f;
}
"""


def test_interpreter_streaming_throughput(benchmark):
    """Lanes/second of the vectorized interpreter on a streaming kernel."""
    k = parse_kernel(VEC)
    n = 1 << 20
    x = np.ones(n, dtype=np.float32)
    y = np.zeros(n, dtype=np.float32)
    cfg = LaunchConfig.make(n // 256, 256)

    def run():
        run_grid(k, cfg, {"x": x, "y": y, "n": n})

    benchmark(run)
    assert y[0] == 3.0


def test_interpreter_loop_kernel_throughput(benchmark):
    """Iterations/second on a loop-heavy kernel (FIR, small)."""
    k = parse_kernel(FIR_SRC)
    n, taps = 1 << 14, 64
    inp = np.ones(n + taps, dtype=np.float32)
    co = np.ones(taps, dtype=np.float32)
    out = np.zeros(n, dtype=np.float32)
    cfg = LaunchConfig.make(n // 256, 256)

    def run():
        run_grid(
            k, cfg,
            {"input": inp, "coeff": co, "output": out, "num_taps": taps,
             "n": n},
        )

    benchmark(run)


def test_parser_latency(benchmark):
    benchmark(lambda: parse_kernel(FIR_SRC))


def test_analysis_latency(benchmark):
    k = parse_kernel(FIR_SRC)
    benchmark(lambda: analyze_kernel(k))


def test_plan_finalization_latency(benchmark):
    a = analyze_kernel(parse_kernel(FIR_SRC))
    cfg = LaunchConfig.make(4096, 256)
    scalars = {"num_taps": 64, "n": 4096 * 256 - 100}
    plan = benchmark(lambda: finalize_plan(a, cfg, scalars, 32))
    assert not plan.replicated


def test_allgather_data_movement(benchmark):
    """Bytes/second the simulated communicator physically moves."""
    cl = Cluster(SIMD_FOCUSED_NODE, 8)
    per_rank = 1 << 18
    for node in cl.nodes:
        node.alloc("d", per_rank * 8, np.float32)

    def run():
        cl.comm.allgather_in_place("d", 0, per_rank)

    benchmark(run)

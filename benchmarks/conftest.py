"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_*`` file regenerates one table/figure of the paper through
``repro.bench.figures`` and times it with pytest-benchmark.  The rendered
tables are written to ``benchmarks/results/*.txt`` (stdout is captured by
pytest unless ``-s`` is given).

Set ``REPRO_BENCH_SIZE=small`` for a fast pass with CI-sized problems;
the default regenerates the paper-size experiments (the first profile
pass takes ~1 minute and is cached across all benchmarks in the session).
"""

from __future__ import annotations

import os
import pathlib

import pytest

SIZE = os.environ.get("REPRO_BENCH_SIZE", "paper")
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_size() -> str:
    return SIZE


@pytest.fixture()
def emit():
    """Write a FigureResult's rendering to benchmarks/results/ and echo it."""

    def _emit(result, name: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _emit

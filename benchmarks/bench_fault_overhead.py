"""Fault-injection overhead: completion time under injected failures.

Runs one distributable workload on an 8-node cluster under a sweep of
seeded fault plans — node crashes at each phase boundary, transient
collective timeouts, payload corruption, stragglers — and compares the
modeled completion time against the fault-free run.  Every faulty run's
output buffers are verified bit-identical to the fault-free reference,
so the table also doubles as an end-to-end recovery correctness check.
"""

import numpy as np

from repro.bench.figures import FigureResult
from repro.bench.harness import run_on_cucc
from repro.cluster import make_cluster
from repro.cluster.faults import (
    CorruptionFault,
    FaultPlan,
    NodeCrash,
    StragglerFault,
    TransientFault,
)
from repro.workloads import fir

NODES = 4

SCENARIOS = [
    ("fault-free", None),
    ("crash @partial", FaultPlan((NodeCrash(rank=3, phase="partial"),), seed=1)),
    ("crash @allgather", FaultPlan((NodeCrash(rank=3, phase="allgather"),), seed=1)),
    ("crash @callback", FaultPlan((NodeCrash(rank=3, phase="callback"),), seed=1)),
    (
        "2 crashes",
        FaultPlan(
            (NodeCrash(rank=2, phase="partial"), NodeCrash(rank=1, phase="allgather")),
            seed=1,
        ),
    ),
    ("transient x1", FaultPlan((TransientFault(op=1),), seed=1)),
    ("transient x3", FaultPlan((TransientFault(op=1, count=3),), seed=1)),
    ("corruption", FaultPlan((CorruptionFault(op=1, rank=0),), seed=1)),
    ("straggler 4x", FaultPlan((StragglerFault(rank=1, compute=4.0),), seed=1)),
    ("random seed=7", FaultPlan.random(seed=7, num_nodes=NODES, crashes=1, transients=1)),
]


def fault_overhead(size: str = "small") -> FigureResult:
    spec = fir.build(size)
    ref = run_on_cucc(spec, make_cluster("simd-focused", NODES))
    ref_out = {
        o: ref.runtime.memory.memcpy_d2h(o, check_consistency=True)
        for o in spec.outputs
    }
    rows = []
    for label, plan in SCENARIOS:
        res = run_on_cucc(
            spec, make_cluster("simd-focused", NODES), fault_plan=plan
        )
        for o in spec.outputs:
            got = res.runtime.memory.memcpy_d2h(o, check_consistency=True)
            if not np.array_equal(got, ref_out[o]):
                raise AssertionError(
                    f"{label}: recovered {o!r} differs from fault-free run"
                )
        rec = res.record
        rows.append(
            [
                label,
                res.runtime.cluster.num_nodes,
                rec.retries,
                rec.recoveries,
                f"{rec.phases.recovery * 1e3:.3f}",
                f"{res.time * 1e3:.3f}",
                f"{res.time / ref.time:.2f}x",
            ]
        )
    rows.extend(_elastic_rows(spec, ref, ref_out))
    return FigureResult(
        figure="fault-overhead",
        title=f"completion time under injected faults (FIR {size}, "
        f"{NODES} nodes)",
        headers=[
            "scenario", "nodes left", "retries", "recoveries",
            "recovery (ms)", "total (ms)", "vs fault-free",
        ],
        rows=rows,
        notes=[
            "every faulty run's output verified bit-identical to the "
            "fault-free reference",
            "checkpointed rows assert zero simulated-time overhead; the "
            "resumed row asserts bit-identical convergence after a "
            "mid-run halt",
        ],
    )


def _elastic_rows(spec, ref, ref_out):
    """Checkpointed and halt/resume configurations of the crash scenario.

    Durable checkpoints must be invisible to simulated time, and a run
    interrupted at its first checkpoint and resumed from disk must
    reproduce the uninterrupted run bit-for-bit — both are *asserted*
    here, so the benchmark doubles as the elastic differential gate.
    """
    import tempfile

    from repro.errors import CheckpointHalt
    from repro.ops import CheckpointPolicy, latest_checkpoint, resume_on_cucc

    def crash_plan():
        return FaultPlan((NodeCrash(rank=3, phase="allgather"),), seed=1)

    def row(label, res):
        rec = res.record
        return [
            label,
            res.runtime.cluster.num_nodes,
            rec.retries,
            rec.recoveries,
            f"{rec.phases.recovery * 1e3:.3f}",
            f"{res.time * 1e3:.3f}",
            f"{res.time / ref.time:.2f}x",
        ]

    rows = []
    with tempfile.TemporaryDirectory() as td:
        meta = {"workload": spec.name, "size": "bench"}
        ck_free = run_on_cucc(
            spec, make_cluster("simd-focused", NODES),
            checkpoint=CheckpointPolicy(directory=f"{td}/free"),
            app_meta=meta,
        )
        if ck_free.time != ref.time:
            raise AssertionError(
                "checkpointing perturbed the fault-free simulated time"
            )
        rows.append(row("ckpt'd fault-free", ck_free))

        crash_ref = run_on_cucc(
            spec, make_cluster("simd-focused", NODES),
            fault_plan=crash_plan(),
        )
        ck_crash = run_on_cucc(
            spec, make_cluster("simd-focused", NODES),
            fault_plan=crash_plan(),
            checkpoint=CheckpointPolicy(directory=f"{td}/crash"),
            app_meta=meta,
        )
        if ck_crash.time != crash_ref.time:
            raise AssertionError(
                "checkpointing perturbed the faulted simulated time"
            )
        rows.append(row("ckpt'd crash", ck_crash))

        try:
            run_on_cucc(
                spec, make_cluster("simd-focused", NODES),
                fault_plan=crash_plan(),
                checkpoint=CheckpointPolicy(
                    directory=f"{td}/halt", halt_after=1
                ),
                app_meta=meta,
            )
        except CheckpointHalt:
            pass
        else:
            raise AssertionError("--halt-after drill never halted")
        resumed = resume_on_cucc(spec, latest_checkpoint(f"{td}/halt"))
        if resumed.time != crash_ref.time:
            raise AssertionError(
                "resumed run's time differs from the uninterrupted run"
            )
        for o in spec.outputs:
            got = resumed.runtime.memory.memcpy_d2h(
                o, check_consistency=True
            )
            if not np.array_equal(got, ref_out[o]):
                raise AssertionError(
                    f"resumed run: {o!r} differs from the reference"
                )
        rows.append(row("halt+resume crash", resumed))
    return rows


def test_fault_overhead(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: fault_overhead(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fault_overhead")

"""Regenerate the section 8.4 cost/energy extension table.

Quantifies the paper's qualitative argument that idle CPUs are an
energy-attractive substitute for scarce GPUs, using the spec database's
load/idle power figures.
"""

from repro.bench import figures as F


def test_extra_energy(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.extra_energy(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "extra_energy")

"""Regenerate Figure 12: cluster-wide throughput.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.

The serving-mode growth of this figure — a mixed queue on one shared
pool with FCFS leasing and Allgather-window pipelining — lives in
`bench_serving.py` and, regression-gated, in ``BENCH_serving.json``.
"""

from repro.bench import figures as F


def test_fig12_throughput(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.fig12_throughput(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fig12_throughput")

"""Regenerate Figure 12: cluster-wide throughput.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig12_throughput(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.fig12_throughput(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fig12_throughput")

"""Serving-mode throughput: the concurrent growth of Figure 12.

Figure 12 models cluster-wide throughput with one workload replicated
across static partitions.  This benchmark serves the same question the
way `repro serve` does: a mixed submission queue, FCFS subset leasing,
and Allgather-window pipelining on one shared pool — and checks the
serving contract while timing it (per-job bit-identity to serial, and
higher launches/sec than serial at no-worse p99 tail latency).

The continuous, regression-gated version of this experiment is
``BENCH_serving.json`` (``repro bench --json``); this wrapper times the
pipelined run with pytest-benchmark and writes the per-job service
table to `benchmarks/results/`.
"""

import pathlib

from repro.serve import (
    ServeConfig,
    serve_requests,
    serve_serially,
    synth_requests,
    verify_against_serial,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_serving_throughput(benchmark, bench_size):
    requests = synth_requests(
        "FIR:2,KMeans:1,Transpose:1", rate=2e6, jobs=12, nodes=2,
        size=bench_size, seed=0,
    )
    report = benchmark.pedantic(
        lambda: serve_requests(requests, ServeConfig(nodes=8)),
        rounds=1, iterations=1,
    )
    serial = serve_serially(requests, ServeConfig(nodes=8))
    assert verify_against_serial(report, serial) == []
    assert report.stats.launches_per_sec > serial.stats.launches_per_sec
    assert report.stats.latency_p99_s <= serial.stats.latency_p99_s

    RESULTS_DIR.mkdir(exist_ok=True)
    text = report.format_report()
    (RESULTS_DIR / "serving_throughput.txt").write_text(text + "\n")
    print()
    print(text)

"""Regenerate the section 8.3 workload-redistribution ablation.

Applies the block-regridding transformation (the paper's first "future
direction", implemented in ``repro.transform.regrid``) to the evaluation
workloads and compares 32-node CuCC runtimes against the original
SM-tuned geometries.
"""

from repro.bench import figures as F


def test_ablation_regrid(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.ablation_regrid(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "ablation_regrid")

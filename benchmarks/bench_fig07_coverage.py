"""Regenerate Figure 7: Allgather-distributable coverage.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig07_coverage(benchmark, emit):
    result = benchmark.pedantic(
        lambda: F.fig07_coverage(), rounds=1, iterations=1
    )
    emit(result, "fig07_coverage")

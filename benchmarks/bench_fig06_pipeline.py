"""Regenerate Figure 6: the migration pipeline artifacts.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig06_pipeline(benchmark, emit):
    result = benchmark.pedantic(
        lambda: F.fig06_pipeline(), rounds=1, iterations=1
    )
    emit(result, "fig06_pipeline")

"""Regenerate Figure 11: CPU clusters vs GPUs.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig11_cpu_vs_gpu(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.fig11_cpu_vs_gpu(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fig11_cpu_vs_gpu")

"""Regenerate Figure 1: CPU vs GPU partition waiting times (Slurm simulation).

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig01_waiting_times(benchmark, emit):
    result = benchmark.pedantic(
        lambda: F.fig01_waiting_times(), rounds=1, iterations=1
    )
    emit(result, "fig01_waiting_times")

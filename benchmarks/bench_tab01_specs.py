"""Regenerate Table 1: cluster specifications.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_tab01_specs(benchmark, emit):
    result = benchmark.pedantic(
        lambda: F.tab01_specs(), rounds=1, iterations=1
    )
    emit(result, "tab01_specs")

"""Regenerate Section 2.3: Allgather variant comparison.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F
from repro.cluster.collectives import ALLGATHER_ALGOS


def test_fig03_allgather(benchmark, emit):
    result = benchmark.pedantic(
        lambda: F.fig03_allgather(), rounds=1, iterations=1
    )
    emit(result, "fig03_allgather")


def test_fig03_allgather_zoo(benchmark, emit):
    """Per-algorithm crossover table over the fat-tree, plus the
    functional gate: every zoo algorithm must gather byte-identical
    buffers through the real communicator (the driver raises on any
    mismatch, failing this test)."""
    result = benchmark.pedantic(
        lambda: F.fig03_allgather_zoo(), rounds=1, iterations=1
    )
    emit(result, "fig03_allgather_zoo")
    assert result.data["verified_buckets"] > 0
    assert set(result.data["winners"].values()) <= set(ALLGATHER_ALGOS)

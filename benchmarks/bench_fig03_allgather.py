"""Regenerate Section 2.3: Allgather variant comparison.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig03_allgather(benchmark, emit):
    result = benchmark.pedantic(
        lambda: F.fig03_allgather(), rounds=1, iterations=1
    )
    emit(result, "fig03_allgather")

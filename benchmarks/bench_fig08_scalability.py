"""Regenerate Figure 8: CuCC strong scaling.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig08_scalability(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.fig08_scalability(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fig08_scalability")

"""Regenerate Figure 13: SIMD- vs Thread-Focused at equal peak.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig13_simd_vs_thread(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.fig13_simd_vs_thread(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fig13_simd_vs_thread")

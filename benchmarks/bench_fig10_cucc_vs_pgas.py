"""Regenerate Figure 10: CuCC vs PGAS runtime ratio.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig10_cucc_vs_pgas(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.fig10_cucc_vs_pgas(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fig10_cucc_vs_pgas")

"""Regenerate Figure 4: PGAS migration scalability.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig04_pgas_scaling(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.fig04_pgas_scaling(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fig04_pgas_scaling")

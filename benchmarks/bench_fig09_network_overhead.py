"""Regenerate Figure 9: network overhead share.

Timed with pytest-benchmark; the rendered table lands in
`benchmarks/results/`.  See DESIGN.md's per-experiment index for the
workload, parameters and modules behind this experiment.
"""

from repro.bench import figures as F


def test_fig09_network_overhead(benchmark, emit, bench_size):
    result = benchmark.pedantic(
        lambda: F.fig09_network_overhead(size=bench_size), rounds=1, iterations=1
    )
    emit(result, "fig09_network_overhead")

#!/usr/bin/env python
"""Quickstart: migrate the paper's Listing 1 to a 2-node CPU cluster.

Walks the full CuCC pipeline on the paper's running example — the
``vec_copy`` kernel with 1200 elements and 256-thread blocks — showing
each artifact the paper's Figure 6 shows:

1. parse the CUDA source to kernel IR;
2. run the Allgather distributable analysis (metadata: tail_divergent,
   mem_ptr, unit_size);
3. generate the CPU kernel module (Listing 2) and the three-phase host
   module;
4. execute on a simulated 2-node cluster and verify that both nodes end
   up with identical, correct memory.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import api

CUDA_SOURCE = """
#define N 1200
__global__ void vec_copy(char *src, char *dest) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < N)
        dest[id] = src[id];
}
"""


def main() -> None:
    # -- 1. CUDA source -> kernel IR -----------------------------------
    kernel = api.parse_cuda_kernel(CUDA_SOURCE)
    print("parsed kernel:")
    print(api.print_kernel(kernel))
    print()

    # -- 2. + 3. compile: analysis + generated modules ------------------
    cluster = api.make_cluster("simd-focused", 2)
    rt = api.CuCCRuntime(cluster)
    compiled = rt.compile(kernel)
    print(compiled.describe())
    print()
    print("generated CPU kernel module (paper Listing 2):")
    print(compiled.kernel_module_src)
    print()
    print("generated CPU host module (paper Figure 6):")
    print(compiled.host_module_src)
    print()

    # -- 4. launch on the cluster ---------------------------------------
    n = 1200
    src = (np.arange(n) % 100).astype(np.int8)
    rt.memory.alloc("src", n, np.int8)
    rt.memory.alloc("dest", n, np.int8)
    rt.memory.memcpy_h2d("src", src)

    record = rt.launch(compiled, grid=5, block=256, args={"src": "src", "dest": "dest"})
    print(record.describe())
    print(record.plan.describe())

    # every node must hold the complete, identical result
    out = rt.memory.memcpy_d2h("dest", check_consistency=True)
    assert np.array_equal(out, src)
    print()
    print(
        f"OK: all {cluster.num_nodes} nodes hold identical correct results; "
        f"simulated kernel time {record.time * 1e6:.1f} us "
        f"({record.comm_bytes} B exchanged by the Allgather)"
    )


if __name__ == "__main__":
    main()

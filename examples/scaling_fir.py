#!/usr/bin/env python
"""Strong-scaling study: FIR filter across cluster sizes and platforms.

Reproduces the flavor of the paper's Figure 8 for its best-scaling
workload: runs the FIR filter through the real three-phase runtime on
SIMD-Focused clusters of 1-8 nodes (functional execution with per-node
memories and a real Allgather), compares against the GPU and PGAS
baselines, and prints the per-phase time breakdown.

Run:  python examples/scaling_fir.py        (~1 minute)
"""

from repro import api
from repro.bench.harness import format_table, run_on_cucc, run_on_gpu, run_on_pgas
from repro.workloads import PERF_WORKLOADS


def main() -> None:
    build = PERF_WORKLOADS["FIR"]

    # GPU reference
    spec = build("small")
    t_a100 = run_on_gpu(spec, api.A100)
    print(f"A100 (model):          {t_a100 * 1e6:9.1f} us")

    rows = []
    t1 = None
    for nodes in (1, 2, 4, 8):
        spec = build("small")
        cluster = api.Cluster(api.SIMD_FOCUSED_NODE, nodes, name=f"simd x{nodes}")
        res = run_on_cucc(spec, cluster)  # verifies on every node
        ph = res.record.phases
        if t1 is None:
            t1 = res.time
        rows.append(
            [
                nodes,
                f"{res.time * 1e6:.1f}",
                f"{ph.partial * 1e6:.1f}",
                f"{ph.allgather * 1e6:.1f}",
                f"{ph.callback * 1e6:.1f}",
                f"{t1 / res.time:.2f}x",
                "replicated" if res.record.plan.replicated else
                f"{res.record.plan.p_size} blocks/node",
            ]
        )
    print()
    print(
        format_table(
            ["Nodes", "total (us)", "partial", "allgather", "callback",
             "speedup", "plan"],
            rows,
        )
    )

    spec = build("small")
    cluster = api.Cluster(api.SIMD_FOCUSED_NODE, 4, name="simd x4 (pgas)")
    t_pgas = run_on_pgas(spec, cluster)
    print(f"\nPGAS migration, 4 nodes: {t_pgas * 1e6:9.1f} us "
          "(fine-grained puts vs CuCC's single Allgather)")
    print("\nNote: 'small' problem sizes keep this example fast; run "
          "`python -m repro.bench fig08` for the paper-scale sweep.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A BERT encoder layer on a CPU cluster — the paper's motivating workload.

The paper motivates GPU-to-CPU migration with AI inference (its coverage
study compiles BERT with Triton and finds every kernel Allgather
distributable).  This example assembles a single-head encoder layer from
those kernel shapes and runs the whole forward pass — fourteen kernel
launches: QKV projections, attention scores, softmax, context, output
projection, two residual adds, two layernorms, and the GELU MLP — on a
4-node SIMD-Focused cluster, on a single CPU node, and on the A100
model, verifying all three against a NumPy oracle (cluster and GPU
results are bit-identical: they execute the same kernels).

Run:  python examples/bert_layer.py        (~30 s)
"""

import numpy as np

from repro import api
from repro.baselines import GPUDevice
from repro.workloads.bert_app import (
    BertLayer,
    BertWeights,
    GPUAdapter,
    reference_forward,
)


def main() -> None:
    seq, hidden, ffn = 64, 64, 256
    weights = BertWeights.create(hidden, ffn, seed=0)
    tokens = (
        np.random.default_rng(1).standard_normal((seq, hidden)).astype(np.float32)
    )
    ref = reference_forward(tokens, weights)

    # -- 4-node cluster ---------------------------------------------------
    rt = api.CuCCRuntime(api.make_cluster("simd-focused", 4))
    layer = BertLayer(rt, seq, weights)
    out = layer.forward(tokens)
    assert np.allclose(out, ref, atol=2e-3)
    n_dist = sum(not r.plan.replicated for r in rt.launches)
    total = sum(r.time for r in rt.launches)
    comm = sum(r.phases.allgather for r in rt.launches)
    print(
        f"cluster (4 nodes): {len(rt.launches)} launches, {n_dist} "
        f"distributed; {total * 1e3:.3f} ms simulated "
        f"({100 * comm / total:.0f}% Allgather)"
    )
    print("every intermediate buffer verified consistent on all 4 replicas")

    by_kernel: dict[str, float] = {}
    for r in rt.launches:
        by_kernel[r.kernel_name] = by_kernel.get(r.kernel_name, 0.0) + r.time
    for name, t in sorted(by_kernel.items(), key=lambda kv: -kv[1]):
        print(f"  {name:16s} {t * 1e6:8.1f} us")

    # -- single node --------------------------------------------------------
    rt1 = api.CuCCRuntime(api.make_cluster("simd-focused", 1))
    out1 = BertLayer(rt1, seq, weights).forward(tokens)
    t1 = sum(r.time for r in rt1.launches)
    print(f"\nsingle node: {t1 * 1e3:.3f} ms simulated "
          f"(cluster speedup {t1 / total:.2f}x)")

    # -- GPU ------------------------------------------------------------------
    gpu = GPUAdapter(GPUDevice(api.A100))
    out_g = BertLayer(gpu, seq, weights).forward(tokens)
    print(f"A100: {gpu.device.clock.now * 1e3:.3f} ms simulated")
    assert np.array_equal(out, out_g), "cluster and GPU must agree bitwise"
    assert np.array_equal(out, out1)
    print("\nOK: cluster == single node == GPU, all within 2e-3 of NumPy")


if __name__ == "__main__":
    main()

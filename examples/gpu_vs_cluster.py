#!/usr/bin/env python
"""GPU vs CPU-cluster comparison across all eight evaluation workloads.

A compact version of the paper's Figure 11: runs every workload (small
size) on the A100/V100 models, on a single CPU node of each type
(CuPBoP-equivalent), and on small CuCC clusters, checking correctness on
every platform and printing the runtime matrix.

Run:  python examples/gpu_vs_cluster.py       (~30 s)
"""

from repro import api
from repro.bench.harness import format_table, run_on_cucc, run_on_gpu
from repro.workloads import PERF_WORKLOADS


def main() -> None:
    rows = []
    for name, build in PERF_WORKLOADS.items():
        t_a100 = run_on_gpu(build("small"), api.A100)
        t_v100 = run_on_gpu(build("small"), api.V100)

        simd1 = run_on_cucc(
            build("small"), api.Cluster(api.SIMD_FOCUSED_NODE, 1)
        ).time
        simd4 = run_on_cucc(
            build("small"), api.Cluster(api.SIMD_FOCUSED_NODE, 4)
        ).time
        thread4 = run_on_cucc(
            build("small"), api.Cluster(api.THREAD_FOCUSED_NODE, 4)
        ).time
        rows.append(
            [
                name,
                f"{t_a100 * 1e6:.1f}",
                f"{t_v100 * 1e6:.1f}",
                f"{simd1 * 1e6:.1f}",
                f"{simd4 * 1e6:.1f}",
                f"{thread4 * 1e6:.1f}",
                f"{simd4 / t_a100:.2f}x",
            ]
        )
    print(
        format_table(
            ["Workload", "A100 (us)", "V100 (us)", "SIMD x1", "SIMD x4",
             "Thread x4", "SIMDx4 / A100"],
            rows,
        )
    )
    print(
        "\nEvery run verified against the NumPy reference on every node's "
        "memory.  For paper-scale numbers run `python -m repro.bench fig11`."
    )


if __name__ == "__main__":
    main()

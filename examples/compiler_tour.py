#!/usr/bin/env python
"""Compiler tour: what the Allgather distributable analysis accepts.

Feeds a gallery of kernels to the analysis — accepted patterns (the
paper's section 6 cases: plain bound checks, early returns, thread-0
reduction outputs, multi-element writes) and every rejection class
(indirect writes, atomics, cross-block overlap, block-variant guards,
data-dependent loops) — and prints the verdict with the compiler's
reasoning, plus the launch-time plan for one kernel at several node
counts (showing how callback blocks arise from tail divergence and
remainder blocks, the paper's KMeans discussion).

Run:  python examples/compiler_tour.py
"""

from repro import api
from repro.analysis import finalize_plan
from repro.interp import LaunchConfig

GALLERY = {
    "bound-checked store (tail divergent)": """
__global__ void k1(const float *x, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = x[id] * 2.0f;
}
""",
    "guarded early return": """
__global__ void k2(const float *x, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id >= n) return;
    y[id] = x[id] + 1.0f;
}
""",
    "thread-0 reduction output (BinomialOption pattern)": """
__global__ void k3(const float *x, float *out) {
    __shared__ float acc[256];
    acc[threadIdx.x] = x[blockIdx.x * blockDim.x + threadIdx.x];
    __syncthreads();
    if (threadIdx.x == 0) {
        float s = 0.0f;
        for (int t = 0; t < blockDim.x; t++) s += acc[t];
        out[blockIdx.x] = s;
    }
}
""",
    "four elements per thread": """
__global__ void k4(float *y) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    for (int j = 0; j < 4; j++) y[gid * 4 + j] = (float)j;
}
""",
    "REJECT: indirect write (scatter)": """
__global__ void r1(const int *idx, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[idx[id]] = 1.0f;
}
""",
    "REJECT: atomic histogram": """
__global__ void r2(const uint *data, uint *bins, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) atomicAdd(&bins[(int)(data[id] % 64u)], 1u);
}
""",
    "REJECT: blocks overlap (no blockIdx in index)": """
__global__ void r3(float *y) {
    y[threadIdx.x] = 1.0f;
}
""",
    "REJECT: block-variant guard": """
__global__ void r4(float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (blockIdx.x % 2 == 0) y[id] = 1.0f;
}
""",
    "REJECT: data-dependent write condition": """
__global__ void r5(const float *x, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        if (x[id] > 0.0f) y[id] = x[id];
    }
}
""",
}


def main() -> None:
    for label, src in GALLERY.items():
        kernel = api.parse_cuda_kernel(src)
        analysis = api.analyze_kernel(kernel)
        vect = api.analyze_vectorizability(kernel)
        print(f"--- {label} ---")
        print(analysis.metadata.describe())
        print(f"  vectorization: {vect.describe()}")
        print()

    # launch-time planning: how callback blocks arise (KMeans's 313 blocks)
    print("=== launch-time plans: 313 blocks, the paper's KMeans grid ===")
    kernel = api.parse_cuda_kernel(GALLERY["bound-checked store (tail divergent)"])
    analysis = api.analyze_kernel(kernel)
    n = 313 * 256 - 128  # tail block half full
    for nodes in (4, 16, 32):
        plan = finalize_plan(analysis, LaunchConfig.make(313, 256), {"n": n}, nodes)
        per_node = plan.p_size + len(plan.callback_blocks)
        print(
            f"{nodes:3d} nodes: p_size={plan.p_size:3d}, callback blocks="
            f"{len(plan.callback_blocks):3d} -> each node executes {per_node} "
            "blocks"
        )
    print(
        "\n(16 nodes -> 19+9=28 blocks per node; 32 nodes -> 9+25=34: "
        "more total work per node at 32 nodes — the paper's KMeans slowdown)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A complete application: iterative KMeans clustering on a CPU cluster.

The earlier examples launch single kernels; real GPU applications
interleave kernel launches with host logic.  This one runs Lloyd's
algorithm end to end on a 4-node simulated cluster:

1. the assignment kernel (the paper's KMeans workload, 313 GPU blocks)
   executes distributed via the three-phase CuCC workflow;
2. membership comes back with ``memcpy_d2h(check_consistency=True)`` —
   asserting that every iteration left all four replicas identical;
3. centroids are recomputed on the host and re-broadcast with
   ``memcpy_h2d``, restoring the replication invariant for the next
   launch.

The final membership and centroids are verified against a pure-NumPy
Lloyd's implementation with the same tie-breaking, and the run prints
the simulated time spent in each phase across all iterations.

Run:  python examples/kmeans_app.py        (~30 s)
"""

import numpy as np

from repro import api
from repro.workloads.kmeans import CUDA_SOURCE


def host_update(x_fm: np.ndarray, membership: np.ndarray, k: int) -> np.ndarray:
    """Recompute centroids (feature-major) from assignments."""
    d, n = x_fm.shape
    cent = np.zeros((d, k), dtype=np.float32)
    for c in range(k):
        sel = membership == c
        if sel.any():
            cent[:, c] = x_fm[:, sel].mean(axis=1, dtype=np.float64)
    return cent


def numpy_lloyd(x_fm, cent0, iters):
    """Reference: Lloyd's algorithm with the kernel's tie-breaking."""
    cent = cent0.copy()
    d, n = x_fm.shape
    k = cent.shape[1]
    member = np.zeros(n, dtype=np.int32)
    for _ in range(iters):
        best = np.full(n, np.float32(3.4e38))
        member = np.zeros(n, dtype=np.int32)
        for c in range(k):
            dist = np.zeros(n, dtype=np.float32)
            for j in range(d):
                diff = x_fm[j] - cent[j, c]
                dist += diff * diff
            upd = dist < best
            member = np.where(upd, np.int32(c), member)
            best = np.minimum(dist, best)
        cent = host_update(x_fm, member, k)
    return member, cent


def main() -> None:
    n, d, k, iters = 313 * 64, 8, 6, 5
    rng = np.random.default_rng(7)
    # three separated blobs plus noise so the clustering is meaningful
    centers = rng.standard_normal((d, k)) * 4
    labels_true = rng.integers(0, k, n)
    x = (centers[:, labels_true] + rng.standard_normal((d, n))).astype(
        np.float32
    )
    cent0 = x[:, rng.choice(n, k, replace=False)].astype(np.float32)
    cent = cent0.copy()

    cluster = api.make_cluster("simd-focused", 4)
    rt = api.CuCCRuntime(cluster)
    compiled = rt.compile(api.parse_cuda_kernel(CUDA_SOURCE))
    print(compiled.analysis.metadata.describe())

    rt.memory.alloc("x", d * n, np.float32)
    rt.memory.alloc("centroids", d * k, np.float32)
    rt.memory.alloc("membership", n, np.int32)
    rt.memory.memcpy_h2d("x", x.reshape(-1))

    block = 64
    grid = -(-n // block)
    member = None
    for it in range(iters):
        rt.memory.memcpy_h2d("centroids", cent.reshape(-1))
        rec = rt.launch(
            compiled,
            grid,
            block,
            {
                "x": "x",
                "centroids": "centroids",
                "membership": "membership",
                "npoints": n,
                "nclusters": k,
                "nfeatures": d,
            },
        )
        member = rt.memory.memcpy_d2h("membership", check_consistency=True)
        cent = host_update(x, member, k)
        moved = np.bincount(member, minlength=k)
        print(
            f"iter {it}: {rec.describe()}  cluster sizes={list(moved)}"
        )

    ref_member, ref_cent = numpy_lloyd(x, cent0, iters)
    assert np.array_equal(member, ref_member), "assignments diverge"
    assert np.allclose(cent, ref_cent, rtol=1e-5, atol=1e-6)

    total = sum(r.time for r in rt.launches)
    comm = sum(r.phases.allgather for r in rt.launches)
    print(
        f"\nOK: {iters} distributed iterations match the NumPy Lloyd's "
        f"reference exactly on all {cluster.num_nodes} nodes"
    )
    print(
        f"simulated kernel time {total * 1e3:.3f} ms total, of which "
        f"{comm * 1e3:.3f} ms Allgather "
        f"({100 * comm / total:.1f}% network overhead)"
    )


if __name__ == "__main__":
    main()

"""Polynomial algebra and symbolic expression evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import Poly, eval_sym, param_symbol
from repro.errors import AnalysisError
from repro.ir import F32, I32, IRBuilder
from repro.ir.expr import BinOp, Cast, Param, UnOp, Var, const

SYMBOLS = ["tid.x", "ctaid.x", "ntid.x", "param:n"]


def _polys():
    """Strategy generating small random polynomials."""
    monos = st.lists(
        st.tuples(st.sampled_from(SYMBOLS), st.integers(1, 2)),
        max_size=2,
        unique_by=lambda kv: kv[0],
    ).map(lambda kvs: tuple(sorted(kvs)))
    return st.dictionaries(monos, st.integers(-5, 5), max_size=4).map(Poly)


def _values():
    return st.fixed_dictionaries({s: st.integers(0, 20) for s in SYMBOLS})


@given(_polys(), _polys(), _values())
@settings(max_examples=80, deadline=None)
def test_eval_is_ring_homomorphism(p, q, vals):
    assert int((p + q).eval(vals)) == int(p.eval(vals)) + int(q.eval(vals))
    assert int((p * q).eval(vals)) == int(p.eval(vals)) * int(q.eval(vals))
    assert int((-p).eval(vals)) == -int(p.eval(vals))
    assert int((p - q).eval(vals)) == int(p.eval(vals)) - int(q.eval(vals))


@given(_polys(), _polys())
@settings(max_examples=50, deadline=None)
def test_ring_laws(p, q):
    assert p + q == q + p
    assert p * q == q * p
    assert p - p == Poly()
    assert p * Poly.const(1) == p
    assert p * Poly() == Poly()


@given(_polys(), st.integers(1, 7), _values())
@settings(max_examples=50, deadline=None)
def test_scale_and_div_exact_roundtrip(p, k, vals):
    scaled = p.scale(k)
    back = scaled.div_exact(k)
    assert back == p
    assert int(scaled.eval(vals)) == k * int(p.eval(vals))


def test_div_exact_inexact_returns_none():
    p = Poly.sym("tid.x").scale(3) + Poly.const(1)
    assert p.div_exact(2) is None
    assert p.div_exact(0) is None


@given(_polys(), _polys(), _values())
@settings(max_examples=50, deadline=None)
def test_subs_consistent_with_eval(p, q, vals):
    """subs is substitution: eval(p[tid.x := q], v) == eval(p, v[tid.x :=
    eval(q, v)]) — valid when q does not itself mention tid.x."""
    q = q.subs("tid.x", Poly.const(vals["tid.x"]))
    out = p.subs("tid.x", q)
    inner = int(q.eval(vals))
    assert int(out.eval(vals)) == int(p.eval({**vals, "tid.x": inner}))


def test_coeff_extraction():
    # ntid.x * ctaid.x + tid.x + 3
    p = Poly.sym("ntid.x") * Poly.sym("ctaid.x") + Poly.sym("tid.x") + Poly.const(3)
    assert p.coeff("ctaid.x") == Poly.sym("ntid.x")
    assert p.coeff("tid.x") == Poly.const(1)
    assert p.coeff("param:n") == Poly()
    assert p.drop({"tid.x", "ctaid.x"}) == Poly.const(3)


def test_coeff_nonlinear_raises():
    p = Poly.sym("tid.x") * Poly.sym("tid.x")
    assert p.degree("tid.x") == 2
    with pytest.raises(AnalysisError):
        p.coeff("tid.x")


def test_is_linear_in_rejects_cross_terms():
    p = Poly.sym("tid.x") * Poly.sym("ctaid.x")
    assert not p.is_linear_in({"tid.x", "ctaid.x"})
    assert p.is_linear_in({"tid.x"})  # degree 1 in tid.x alone


def test_provably_positive():
    assert (Poly.sym("ntid.x") * Poly.const(2)).provably_positive()
    assert not (Poly.sym("ntid.x") - Poly.const(1)).provably_positive()
    assert not Poly().provably_positive()
    assert Poly.const(5).provably_positive()


def test_eval_vectorized():
    p = Poly.sym("ctaid.x").scale(10) + Poly.const(1)
    out = p.eval({"ctaid.x": np.arange(4)})
    assert list(out) == [1, 11, 21, 31]


def test_eval_missing_symbol_raises():
    with pytest.raises(AnalysisError, match="no value"):
        Poly.sym("tid.x").eval({})


def test_poly_immutable():
    p = Poly.const(1)
    with pytest.raises(AttributeError):
        p.terms = {}


# ---------------------------------------------------------------------------
# symbolic expression evaluation
# ---------------------------------------------------------------------------
def _b():
    return IRBuilder("t")


def test_eval_sym_global_index():
    b = _b()
    e = b.bid_x * b.bdim_x + b.tid_x
    p = eval_sym(e, {})
    assert p == Poly.sym("ctaid.x") * Poly.sym("ntid.x") + Poly.sym("tid.x")


def test_eval_sym_through_env():
    b = _b()
    env = {"gid": eval_sym(b.bid_x * b.bdim_x + b.tid_x, {})}
    e = Var("gid", I32) * const(4) + const(2)
    p = eval_sym(e, env)
    assert p.coeff("tid.x") == Poly.const(4)
    assert p.terms[()] == 2


def test_eval_sym_param_and_unknown_var():
    p = eval_sym(Param("n", I32) + const(1), {})
    assert param_symbol("n") in p.symbols()
    assert eval_sym(Var("ghost", I32), {}) is None


def test_eval_sym_shifts_and_division():
    b = _b()
    assert eval_sym(b.tid_x << const(3), {}) == Poly.sym("tid.x").scale(8)
    assert eval_sym((b.tid_x * 8) >> const(2), {}) == Poly.sym("tid.x").scale(2)
    assert eval_sym((b.tid_x * 4) / const(2), {}) == Poly.sym("tid.x").scale(2)
    # inexact division is not polynomial
    assert eval_sym(b.tid_x / const(2), {}) is None
    assert eval_sym(b.tid_x % const(2), {}) is None
    assert eval_sym(const(7) % const(2), {}) == Poly.const(1)


def test_eval_sym_floats_and_loads_unknown():
    b = _b()
    buf = b.pointer_param("buf", I32)
    assert eval_sym(b.load(buf, b.tid_x), {}) is None
    assert eval_sym(Cast(F32, b.tid_x), {}) is None
    assert eval_sym(Cast(I32, b.tid_x + 1), {}) == Poly.sym("tid.x") + Poly.const(1)
    assert eval_sym(const(2.5), {}) is None
    assert eval_sym(const(2.0), {}) == Poly.const(2)


def test_eval_sym_negation():
    b = _b()
    assert eval_sym(UnOp("-", b.tid_x), {}) == -Poly.sym("tid.x")

"""Topology model, tuning cache, selector, autotuner, and their wiring
through the communicator, fault injector, runtime and CLI."""

import json

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    FatTreeTopology,
    FlatTopology,
    RingTopology,
    TorusTopology,
    collectives as coll,
    make_cluster,
    make_topology,
)
from repro.cluster.collectives import ALLGATHER_ALGOS, rank_groups
from repro.cluster.faults import (
    CorruptionFault,
    FaultInjector,
    FaultPlan,
    TransientFault,
)
from repro.errors import (
    ClusterError,
    CollectiveTimeout,
    DataCorruptionError,
    NodeFailure,
)
from repro.hw import INFINIBAND_100G, SIMD_FOCUSED_NODE
from repro.tuning import TuningCache, autotune, payload_bucket, select_algorithm

NET = INFINIBAND_100G


# ---------------------------------------------------------------------------
# topologies
# ---------------------------------------------------------------------------
def test_flat_topology_prices_every_pair_identically():
    topo = FlatTopology(4, network=NET)
    assert topo.link(0, 3) == topo.link(1, 2) == (NET.alpha_s,
                                                  NET.beta_bytes_per_s)
    assert topo.groups() == ((0, 1, 2, 3),)


def test_fat_tree_links_and_groups():
    topo = FatTreeTopology(num_nodes=6, nodes_per_switch=2,
                           intra_alpha_s=1e-6, intra_beta_GBs=12.0,
                           inter_alpha_s=3e-6, inter_beta_GBs=10.0)
    assert topo.switch_of(0) == topo.switch_of(1) == 0
    assert topo.switch_of(5) == 2
    assert topo.link(0, 1) == (1e-6, 12.0e9)   # same leaf switch
    assert topo.link(1, 2) == (3e-6, 10.0e9)   # across the spine
    assert topo.groups() == ((0, 1), (2, 3), (4, 5))


def test_fat_tree_uplink_contention_serializes_crossers():
    topo = FatTreeTopology(num_nodes=4, nodes_per_switch=2,
                           inter_alpha_s=1e-6, inter_beta_GBs=10.0,
                           uplinks=1)
    one = topo.round_cost([(0, 2, 1e6)])
    two = topo.round_cost([(0, 2, 1e6), (1, 3, 1e6)])  # same switch uplink
    assert two == pytest.approx(1e-6 + 1e6 / (10.0e9 / 2))
    assert two > one
    # with two uplinks the round is uncontended again
    wide = FatTreeTopology(num_nodes=4, nodes_per_switch=2,
                           inter_alpha_s=1e-6, inter_beta_GBs=10.0,
                           uplinks=2)
    assert wide.round_cost([(0, 2, 1e6), (1, 3, 1e6)]) == pytest.approx(one)


def test_ring_and_torus_hop_pricing():
    ring = RingTopology(6, alpha_s=1e-6, beta_GBs=10.0)
    assert ring.hops(0, 1) == 1 and ring.hops(0, 5) == 1  # wraparound
    assert ring.hops(0, 3) == 3
    a3, b3 = ring.link(0, 3)
    assert a3 == pytest.approx(3e-6) and b3 == pytest.approx(10.0e9 / 3)
    torus = TorusTopology(6, dims=(3, 2))
    assert torus.hops(0, 2) == 1  # x wraps: 0 -> 2 is one hop on a 3-ring
    assert torus.hops(0, 5) == 2  # (0,0) -> (2,1)
    assert torus.groups() == ((0, 1, 2), (3, 4, 5))


def test_topology_validation_errors():
    with pytest.raises(ClusterError):
        FlatTopology(0, network=NET)
    with pytest.raises(ClusterError):
        FlatTopology(2)  # no NetworkSpec
    with pytest.raises(ClusterError):
        FatTreeTopology(num_nodes=4, nodes_per_switch=0)
    with pytest.raises(ClusterError):
        FatTreeTopology(num_nodes=4, nodes_per_switch=2, uplinks=0)
    with pytest.raises(ClusterError):
        TorusTopology(6, dims=(2, 2))  # 4 != 6
    with pytest.raises(ClusterError, match="unknown topology"):
        make_topology("hypercube", 8)


def test_make_topology_kinds_and_signatures():
    sigs = set()
    for kind in ("flat", "fat-tree", "ring", "torus"):
        topo = make_topology(kind, 8, network=NET)
        assert topo.num_nodes == 8
        assert topo.signature not in sigs
        sigs.add(topo.signature)
    # NetworkSpec's fat-tree fields are honoured
    ft = make_topology("fat-tree", 32, network=NET)
    assert ft.nodes_per_switch == NET.switch_radix == 16
    assert ft.link(0, 1) == (NET.intra_alpha_s, NET.intra_beta_GBs * 1e9)


def test_rank_groups_follow_surviving_positions():
    topo = FatTreeTopology(num_nodes=4, nodes_per_switch=2)
    # ranks sit at born positions 0, 1, 3 (position 2 died)
    assert rank_groups(topo, (0, 1, 3)) == ((0, 1), (2,))


# ---------------------------------------------------------------------------
# tuning cache
# ---------------------------------------------------------------------------
def test_payload_bucket_edges():
    assert payload_bucket(0) == payload_bucket(1) == 0
    assert payload_bucket(2) == 1
    assert payload_bucket(1024) == 10
    assert payload_bucket(1025) == 11


def test_tuning_cache_roundtrip(tmp_path):
    topo = FlatTopology(4, network=NET)
    cache = TuningCache(path=tmp_path / "t.json")
    assert cache.lookup(topo, 4, 1000) is None
    cache.record(topo, 4, 1000, "bruck", {"ring": 2.0, "bruck": 1.0})
    path = cache.save()
    again = TuningCache.load(path)
    assert len(again) == 1
    assert again.lookup(topo, 4, 999) == "bruck"  # same 2**10 bucket
    assert again.lookup(topo, 4, 1025) is None    # next bucket
    assert again.lookup(topo, 8, 1000) is None    # different node count
    assert again.lookup(FatTreeTopology(4, nodes_per_switch=2), 4, 1000) is None


def test_tuning_cache_rejects_garbage(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text("{not json")
    with pytest.raises(ClusterError, match="not valid JSON"):
        TuningCache.load(p)
    p.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(ClusterError, match="unsupported version"):
        TuningCache.load(p)
    cache = TuningCache()
    with pytest.raises(ClusterError, match="unknown algorithm"):
        cache.record(FlatTopology(2, network=NET), 2, 8, "nope")
    # a cached name that is no longer a zoo member is ignored, not trusted
    cache.entries[TuningCache.key("flat(x)", 2, 8)] = {"algo": "gone"}
    assert TuningCache(cache.entries).lookup(FlatTopology(2, network=NET), 2, 8) is None


def test_missing_cache_file_loads_empty(tmp_path):
    cache = TuningCache.load(tmp_path / "absent.json")
    assert len(cache) == 0
    cache.record(FlatTopology(2, network=NET), 2, 64, "ring")
    assert cache.save().exists()


# ---------------------------------------------------------------------------
# selector + autotuner
# ---------------------------------------------------------------------------
def test_selector_prefers_cache_hit_over_model():
    topo = FlatTopology(4, network=NET)
    cache = TuningCache()
    cache.record(topo, 4, 4096, "hierarchical")  # not the model's choice
    assert select_algorithm(topo, 4096, cache=cache) == "hierarchical"
    assert select_algorithm(topo, 4096) != "hierarchical"


def test_selector_single_rank_short_circuits_to_ring():
    assert select_algorithm(FlatTopology(1, network=NET), 1e6) == "ring"


def test_autotune_records_winners_and_is_side_effect_free():
    cl = Cluster(SIMD_FOCUSED_NODE, 4)
    cl.nodes[0].alloc("keep", 16, np.float32)[:] = 7.0
    cl.nodes[2].clock.advance(1.25)
    cl.comm.comm_seconds = 0.5
    cl.comm.comm_bytes = 123
    cache = autotune(cl, payloads=(1 << 10, 1 << 14))
    assert len(cache) == 2
    for entry in cache.entries.values():
        assert entry["algo"] in ALLGATHER_ALGOS
        assert entry["algo"] == min(entry["costs"], key=entry["costs"].get)
        assert set(entry["costs"]) == set(ALLGATHER_ALGOS)
    # the sweep never perturbed the cluster
    assert cl.nodes[2].clock.now == 1.25
    assert cl.nodes[0].clock.now == 0.0
    assert cl.comm.comm_seconds == 0.5
    assert cl.comm.comm_bytes == 123
    assert np.all(cl.nodes[0].buffer("keep") == 7.0)
    assert not any(n.has_buffer("__tuning_scratch__") for n in cl.nodes)


def test_autotune_single_node_is_empty():
    assert len(autotune(Cluster(SIMD_FOCUSED_NODE, 1))) == 0


def test_auto_resolution_hot_loads_tuned_winner(tmp_path):
    """The acceptance flow: tune, persist, reload, and watch "auto"
    follow the cached winner instead of the cost model."""
    cl = Cluster(SIMD_FOCUSED_NODE, 4)
    path = tmp_path / "tuning.json"
    autotune(cl, payloads=(1 << 12,), cache=TuningCache(path=path)).save()
    # doctor the persisted winner to something the model would not pick,
    # proving the cache (not the model) decides
    doc = json.loads(path.read_text())
    for entry in doc["entries"].values():
        entry["algo"] = "hierarchical"
    path.write_text(json.dumps(doc))
    cl2 = Cluster(SIMD_FOCUSED_NODE, 4, tuning=TuningCache.load(path))
    for node in cl2.nodes:
        node.alloc("d", 4096, np.uint8)
    cl2.comm.allgather_in_place("d", 0, 1024, algo="auto")
    assert cl2.comm.last_algorithm == "hierarchical"
    # an explicit algorithm overrides the cache
    cl2.comm.allgather_in_place("d", 0, 1024, algo="bruck")
    assert cl2.comm.last_algorithm == "bruck"


# ---------------------------------------------------------------------------
# satellite bugfixes: argument validation + barrier accounting
# ---------------------------------------------------------------------------
def test_allgather_rejects_negative_and_overflowing_extents():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    for node in cl.nodes:
        node.alloc("d", 8, np.int32)
    with pytest.raises(ClusterError, match="negative per-rank extent"):
        cl.comm.allgather_in_place("d", 0, -1)
    with pytest.raises(ClusterError, match="out of range"):
        cl.comm.allgather_in_place("d", 0, 5)  # 2 ranks x 5 > 8
    with pytest.raises(ClusterError, match="out of range"):
        cl.comm.allgather_in_place("d", -3, 2)  # negative base slice
    with pytest.raises(ClusterError, match="negative per-rank extent"):
        cl.comm.allgather_out_of_place("d", "d", -2, copy_GBs=10.0)
    with pytest.raises(ClusterError, match="negative contribution"):
        cl.comm.allgatherv_in_place("d", 0, [3, -1])
    with pytest.raises(ClusterError, match="out of range"):
        cl.comm.allgatherv_in_place("d", 0, [7, 3])
    # nothing above moved bytes or time
    assert cl.comm.comm_bytes == 0 and cl.comm.comm_seconds == 0.0


def test_allgatherv_zero_length_contribution_is_per_rank_noop():
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    for r, node in enumerate(cl.nodes):
        buf = node.alloc("d", 8, np.int32)
        buf[:] = -1
        if r == 0:
            buf[0:2] = [10, 11]
        elif r == 2:
            buf[2:5] = [30, 31, 32]
    cl.comm.allgatherv_in_place("d", 0, [2, 0, 3])
    for node in cl.nodes:
        assert list(node.buffer("d")[:5]) == [10, 11, 30, 31, 32]
        assert list(node.buffer("d")[5:]) == [-1, -1, -1]
    # an all-zero v-gather is a modeled no-op, like the balanced one
    before = cl.comm.comm_seconds
    assert cl.comm.allgatherv_in_place("d", 0, [0, 0, 0]) == 0.0
    assert cl.comm.comm_seconds == before


def test_barrier_charges_cost_and_synchronizes_clocks():
    """Pins the satellite contract: barrier charges barrier_cost, adds it
    to comm_seconds, and leaves every clock at the common finish time."""
    cl = Cluster(SIMD_FOCUSED_NODE, 4)
    cl.nodes[1].clock.advance(2.0)
    cl.nodes[3].clock.advance(3.5)
    cost = coll.barrier_cost(NET, 4)
    assert cost > 0.0
    cl.comm.barrier()
    assert cl.comm.comm_seconds == pytest.approx(cost)
    for n in cl.nodes:
        assert n.clock.now == pytest.approx(3.5 + cost)
    # repeat from the synchronized state: cost accrues again
    cl.comm.barrier()
    assert cl.comm.comm_seconds == pytest.approx(2 * cost)


# ---------------------------------------------------------------------------
# fault interplay: identical typed errors from every algorithm path
# ---------------------------------------------------------------------------
def _faulty_cluster(n, fault, topology=None):
    cl = Cluster(SIMD_FOCUSED_NODE, n, topology=topology)
    cl.comm.injector = FaultInjector(FaultPlan(faults=(fault,)))
    for r, node in enumerate(cl.nodes):
        node.alloc("d", 4 * n, np.int32)[r * 4:(r + 1) * 4] = r + 1
    return cl


@pytest.mark.parametrize("algo", ALLGATHER_ALGOS)
def test_transient_fault_times_out_every_algorithm(algo):
    cl = _faulty_cluster(4, TransientFault(op=1, timeout_s=1e-3))
    with pytest.raises(CollectiveTimeout):
        cl.comm.allgather_in_place("d", 0, 4, algo=algo)
    # every participant waited out the same timeout
    assert all(n.clock.now == pytest.approx(1e-3) for n in cl.nodes)


@pytest.mark.parametrize("algo", ALLGATHER_ALGOS)
def test_corruption_fault_detected_under_every_algorithm(algo):
    topo = FatTreeTopology(num_nodes=4, nodes_per_switch=2)
    cl = _faulty_cluster(4, CorruptionFault(op=1, rank=1), topology=topo)
    with pytest.raises(DataCorruptionError, match="rank 1"):
        cl.comm.allgather_in_place("d", 0, 4, algo=algo)
    # the source replica stays intact (a retry can repair the damage)
    assert list(cl.nodes[1].buffer("d")[4:8]) == [2, 2, 2, 2]


@pytest.mark.parametrize("algo", ALLGATHER_ALGOS)
def test_dead_participant_fails_every_algorithm(algo):
    cl = _faulty_cluster(4, TransientFault(op=99))
    cl.nodes[2].fail("test crash")
    with pytest.raises(NodeFailure, match="node 2 is down"):
        cl.comm.allgather_in_place("d", 0, 4, algo=algo)


# ---------------------------------------------------------------------------
# runtime + trace wiring
# ---------------------------------------------------------------------------
def _scaled_launch(nodes=4, **runtime_kwargs):
    from repro.frontend import parse_kernel
    from repro.runtime import CuCCRuntime

    rt = CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, nodes), **runtime_kwargs)
    src = """
__global__ void scale(const float *x, float *y, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) y[id] = x[id] * 2.0f;
}
"""
    n = 1024
    rt.memory.alloc("x", n, np.float32)
    rt.memory.alloc("y", n, np.float32)
    rt.memory.memcpy_h2d("x", np.arange(n, dtype=np.float32))
    rec = rt.launch(rt.compile(parse_kernel(src)), 4, 256,
                    {"x": "x", "y": "y", "n": n})
    return rt, rec


def test_launch_records_chosen_algorithm_and_trace_reports_it():
    rt, rec = _scaled_launch()
    assert rec.allgather_algo in ALLGATHER_ALGOS
    assert rec.allgather_algo == rec.phases.allgather_algo
    assert rec.allgather_algo in rec.describe()
    report = rt.report()
    assert "algo" in report.splitlines()[0]
    assert rec.allgather_algo in report


def test_runtime_forced_algorithm_reaches_communicator():
    rt, rec = _scaled_launch(allgather_algo="bruck")
    assert rec.allgather_algo == "bruck"
    out = rt.memory.memcpy_d2h("y", check_consistency=True)
    assert np.array_equal(out, np.arange(1024, dtype=np.float32) * 2.0)


def test_forced_algorithms_all_produce_identical_launch_results():
    outs = []
    for algo in ALLGATHER_ALGOS:
        rt, rec = _scaled_launch(allgather_algo=algo)
        assert rec.allgather_algo == algo
        outs.append(rt.memory.memcpy_d2h("y", check_consistency=True))
    for out in outs[1:]:
        assert np.array_equal(out, outs[0])


def test_model_tracks_runtime_under_forced_algorithm():
    """model_cucc_time and the executing runtime agree phase-for-phase
    for every forced zoo algorithm, not just the auto default."""
    from repro.bench.harness import run_on_cucc
    from repro.bench.profile import model_cucc_time, profile_workload
    from repro.workloads import PERF_WORKLOADS

    prof = profile_workload(PERF_WORKLOADS["FIR"]("small"))
    for algo in ("ring", "bruck"):
        spec = PERF_WORKLOADS["FIR"]("small")
        cl = Cluster(SIMD_FOCUSED_NODE, 4)
        cl.comm  # default flat topology
        from repro.runtime import CuCCRuntime

        rt = CuCCRuntime(cl, allgather_algo=algo)
        for name, arr in spec.arrays.items():
            rt.memory.alloc(name, arr.size, arr.dtype)
            rt.memory.memcpy_h2d(name, arr)
        rec = rt.launch(rt.compile(spec.kernel), spec.grid, spec.block,
                        spec.args())
        model = model_cucc_time(prof, SIMD_FOCUSED_NODE, NET, 4,
                                allgather_algo=algo)
        assert model.allgather == pytest.approx(rec.phases.allgather, rel=0.02)
        assert model.allgather_algo == algo


def test_shrink_recovery_keeps_topology_and_tuning():
    cache = TuningCache()
    topo = FatTreeTopology(num_nodes=4, nodes_per_switch=2)
    cl = Cluster(SIMD_FOCUSED_NODE, 4, topology=topo, tuning=cache)
    for node in cl.nodes:
        node.alloc("d", 12, np.uint8)
    cl.nodes[2].fail("test")
    cl.remove_dead()
    assert cl.comm.topology is topo
    assert cl.comm.tuning is cache
    # positions follow born ranks: survivors 0,1,3 split as (0,1) + (3,)
    assert rank_groups(topo, tuple(n.born_rank for n in cl.nodes)) == (
        (0, 1), (2,),
    )
    cl.comm.allgather_in_place("d", 0, 4, algo="hierarchical")
    assert cl.comm.last_algorithm == "hierarchical"


def test_tuning_cache_save_survives_injected_partial_write(
    tmp_path, monkeypatch
):
    """Saves are atomic: a write that dies mid-flight leaves the previous
    cache intact and no torn temp file behind (the serving loop shares
    one on-disk cache across many jobs)."""
    import repro.ioutil as ioutil

    topo = FlatTopology(4, network=NET)
    cache = TuningCache(path=tmp_path / "t.json")
    cache.record(topo, 4, 1000, "bruck")
    cache.save()
    good = (tmp_path / "t.json").read_text()
    cache.record(topo, 4, 4096, "ring")

    # injection 1: the bytes land but the rename dies
    monkeypatch.setattr(
        ioutil.os, "replace",
        lambda *a: (_ for _ in ()).throw(OSError("disk full")),
    )
    with pytest.raises(OSError):
        cache.save()
    monkeypatch.undo()
    assert (tmp_path / "t.json").read_text() == good
    assert not (tmp_path / "t.json.tmp").exists()

    # injection 2: power loss halfway through writing the temp file
    real = ioutil.Path.write_text

    def torn(self, text, *a, **kw):
        real(self, text[: len(text) // 2])
        raise OSError("power loss mid-write")

    monkeypatch.setattr(ioutil.Path, "write_text", torn)
    with pytest.raises(OSError):
        cache.save()
    monkeypatch.undo()
    assert (tmp_path / "t.json").read_text() == good
    assert not (tmp_path / "t.json.tmp").exists()

    # the survivor still loads as the pre-crash cache
    assert len(TuningCache.load(tmp_path / "t.json")) == 1

"""Observability: span tracing, metrics registry, Perfetto export.

Covers the repro.obs subsystem end to end — tracer semantics, the
metrics registry, Chrome-trace export + schema, the critical-path
report, bit-identical determinism of exported JSON, and the guarantee
that tracing/metrics never change modeled times or buffers.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_on_cucc
from repro.cli import main as cli_main
from repro.cluster import make_cluster
from repro.cluster.faults import FaultPlan, NodeCrash, StragglerFault, TransientFault
from repro.obs import METRICS, NULL_TRACER, MetricsRegistry, SpanKind, Tracer
from repro.obs.export import (
    CLUSTER_PID,
    TUNER_PID,
    chrome_trace,
    format_critical_report,
    phase_times_from_spans,
    write_chrome_trace,
)
from repro.runtime.trace import format_trace_report, summarize_launches
from repro.tuning import TuningCache, autotune
from repro.workloads import PERF_WORKLOADS
from trace_schema import validate_chrome_trace

NODES = 4


@pytest.fixture(autouse=True)
def fresh_metrics():
    """Isolate the process-wide registry per test."""
    METRICS.reset()
    yield
    METRICS.reset()


def _run(name="KMeans", nodes=NODES, trace=False, **kw):
    spec = PERF_WORKLOADS[name]("small", seed=0)
    return run_on_cucc(spec, make_cluster("simd-focused", nodes),
                       trace=trace, **kw)


# ---------------------------------------------------------------------------
# tracer semantics
# ---------------------------------------------------------------------------
def test_tracer_nesting_and_parenting():
    tr = Tracer()
    outer = tr.begin("launch k", SpanKind.LAUNCH, 0.0)
    child = tr.add("partial rank 0", SpanKind.EXEC, 0.0, 1.0, rank=0)
    inner = tr.begin("allgather", SpanKind.PHASE, 1.0)
    ev = tr.instant("crash", SpanKind.FAULT, 1.5, rank=2)
    tr.end(inner, 2.0)
    tr.end(outer, 2.5)
    assert child.parent == outer.id
    assert inner.parent == outer.id
    assert ev.parent == inner.id and ev.instant and ev.duration == 0.0
    assert outer.t1 == 2.5 and outer.duration == 2.5
    assert [s.id for s in tr.children(outer)] == [child.id, inner.id]


def test_tracer_end_unwinds_abandoned_children():
    tr = Tracer()
    outer = tr.begin("launch", SpanKind.LAUNCH, 0.0)
    inner = tr.begin("phase", SpanKind.PHASE, 1.0)
    tr.end(outer, 3.0)  # exception-style unwind past `inner`
    assert inner.t1 == 3.0
    assert tr._stack == []


def test_disabled_tracer_records_nothing():
    tr = Tracer(enabled=False)
    assert tr.begin("x", SpanKind.LAUNCH, 0.0) is None
    assert tr.add("x", SpanKind.EXEC, 0.0, 1.0) is None
    assert tr.instant("x", SpanKind.FAULT, 0.0) is None
    tr.end(None, 1.0)  # must not raise
    assert len(tr) == 0
    assert not NULL_TRACER.enabled and len(NULL_TRACER) == 0


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
def test_metrics_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.inc("ops", 2, kind="a")
    reg.inc("ops", 3, kind="a")
    reg.inc("ops", kind="b")
    reg.set_gauge("depth", 7)
    reg.observe("size", 3.0)
    reg.observe("size", 1000.0)
    assert reg.value("ops", kind="a") == 5
    assert reg.total("ops") == 6
    assert reg.value("depth") == 7
    h = reg.histogram("size")
    assert h.count == 2 and h.min == 3.0 and h.max == 1000.0
    assert h.mean == pytest.approx(501.5)
    assert "ops{kind=a} 5" in reg.render()
    assert reg.names() == ["depth", "ops", "size"]


def test_metrics_type_conflict_and_negative_inc():
    reg = MetricsRegistry()
    reg.inc("x")
    with pytest.raises(TypeError):
        reg.set_gauge("x", 1.0)
    with pytest.raises(ValueError):
        reg.inc("y", -1)


def test_disabled_registry_is_inert():
    reg = MetricsRegistry(enabled=False)
    reg.inc("a")
    reg.set_gauge("b", 1)
    reg.observe("c", 1)
    assert reg.names() == []
    assert reg.render() == "(no metrics recorded)"


# ---------------------------------------------------------------------------
# traced runs: span structure + export schema
# ---------------------------------------------------------------------------
def test_traced_run_has_per_rank_phase_and_round_spans():
    res = _run(trace=True)
    tr = res.runtime.tracer
    launches = tr.by_kind(SpanKind.LAUNCH)
    assert len(launches) == 1
    phases = {s.name for s in tr.by_kind(SpanKind.PHASE)}
    assert {"partial", "allgather", "callback"} <= phases
    execs = tr.by_kind(SpanKind.EXEC)
    assert {s.rank for s in execs if s.args["phase"] == "partial"} == set(
        range(NODES)
    )
    colls = tr.by_kind(SpanKind.COLLECTIVE)
    assert colls, "allgather collective span missing"
    rounds = tr.by_kind(SpanKind.ROUND)
    assert rounds, "per-round collective spans missing"
    # rounds tile their collective exactly (same float accumulation
    # order as schedule_cost, and pace is exactly 1.0 fault-free)
    for c in colls:
        kids = [r for r in rounds if r.parent == c.id]
        if kids:
            assert kids[0].t0 == c.t0
            assert kids[-1].t1 == c.t1


def test_chrome_trace_schema_and_rank_timelines(tmp_path):
    res = _run(trace=True)
    path = write_chrome_trace(res.runtime.tracer, tmp_path / "t.json")
    obj = json.loads(path.read_text())
    assert validate_chrome_trace(obj) == []
    names = {
        ev["pid"]: ev["args"]["name"]
        for ev in obj["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    assert names[CLUSTER_PID] == "cluster"
    rank_pids = [p for p, n in names.items() if n.startswith("rank ")]
    assert len(rank_pids) >= NODES


def test_fault_events_export_as_instants(tmp_path):
    res = _run(
        name="FIR",
        trace=True,
        fault_plan=FaultPlan((TransientFault(op=1),), seed=1),
    )
    obj = chrome_trace(res.runtime.tracer)
    instants = [e for e in obj["traceEvents"] if e["ph"] == "i"]
    assert instants and all(e["cat"] == "fault" for e in instants)
    assert validate_chrome_trace(obj) == []
    assert res.record.retries >= 1


def test_autotune_trials_get_their_own_timeline():
    cluster = make_cluster("simd-focused", NODES)
    tr = Tracer()
    cluster.comm.tracer = tr
    autotune(cluster, payloads=(4096,))
    trials = tr.by_kind(SpanKind.TUNE)
    assert trials, "autotune recorded no trial spans"
    # no collective spans leak from the sweep, and trials are laid out
    # sequentially on their own synthetic timeline
    assert tr.by_kind(SpanKind.COLLECTIVE) == []
    for a, b in zip(trials, trials[1:]):
        assert b.t0 >= a.t1
    obj = chrome_trace(tr)
    assert {e["pid"] for e in obj["traceEvents"] if e["ph"] == "X"} == {
        TUNER_PID
    }
    assert METRICS.total("tuning.autotune_trials") == len(trials)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
def test_same_seed_exports_byte_identical_json(tmp_path):
    a = write_chrome_trace(_run(trace=True).runtime.tracer, tmp_path / "a.json")
    b = write_chrome_trace(_run(trace=True).runtime.tracer, tmp_path / "b.json")
    assert a.read_bytes() == b.read_bytes()


@settings(max_examples=6, deadline=None)
@given(
    name=st.sampled_from(["FIR", "KMeans", "Transpose"]),
    nodes=st.integers(min_value=2, max_value=4),
)
def test_tracing_off_is_bit_identical(name, nodes):
    METRICS.reset()
    off = _run(name=name, nodes=nodes, trace=False)
    on = _run(name=name, nodes=nodes, trace=True)
    assert off.record.phases == on.record.phases
    assert off.runtime.sim_time == on.runtime.sim_time
    assert off.record.comm_bytes == on.record.comm_bytes
    assert len(off.runtime.tracer) == 0
    assert off.runtime.tracer is NULL_TRACER


def test_fault_tolerant_run_traced_vs_untraced_identical():
    plan = FaultPlan((NodeCrash(rank=3, phase="allgather"),), seed=1)
    off = _run(name="FIR", trace=False, fault_plan=plan)
    on = _run(name="FIR", trace=True, fault_plan=plan)
    assert off.record.phases == on.record.phases
    assert off.runtime.sim_time == on.runtime.sim_time
    assert on.record.recoveries == 1
    assert on.runtime.tracer.by_kind(SpanKind.FAULT)  # instants recorded
    assert any(
        s.name == "recovery" for s in on.runtime.tracer.by_kind(SpanKind.PHASE)
    )


# ---------------------------------------------------------------------------
# PhaseTimes as consumers of span data
# ---------------------------------------------------------------------------
def test_phase_times_from_spans_bit_identical(tmp_path):
    res = _run(trace=True)
    rebuilt = phase_times_from_spans(res.runtime.tracer)
    assert rebuilt == [(res.record.kernel_name, res.record.phases)]
    # and identically after a JSON round-trip through the export file
    path = write_chrome_trace(res.runtime.tracer, tmp_path / "t.json")
    assert phase_times_from_spans(path) == rebuilt


def test_phase_times_from_spans_with_recovery():
    plan = FaultPlan((NodeCrash(rank=3, phase="partial"),), seed=1)
    res = _run(name="FIR", trace=True, fault_plan=plan)
    (kernel, phases), = phase_times_from_spans(res.runtime.tracer)
    assert phases == res.record.phases
    assert phases.recovery > 0


# ---------------------------------------------------------------------------
# satellite: algorithm dedupe + recovery column
# ---------------------------------------------------------------------------
def test_allgather_algos_unique_first_use_order():
    res = _run()
    rec = res.record
    algos = rec.allgather_algos
    assert isinstance(algos, tuple)
    assert len(set(algos)) == len(algos)
    assert rec.allgather_algo == "+".join(algos)
    assert rec.allgather_algo in rec.describe()
    (stats,) = summarize_launches([rec])
    assert stats.algos == list(algos)
    # stats dedupe across repeated launches of the same kernel
    (stats2,) = summarize_launches([rec, rec, rec])
    assert stats2.algos == list(algos)


def test_recovery_column_only_under_faults():
    clean = format_trace_report([_run(name="FIR").record])
    assert "recovery" not in clean.splitlines()[0]
    plan = FaultPlan((NodeCrash(rank=3, phase="partial"),), seed=1)
    faulty = format_trace_report([_run(name="FIR", fault_plan=plan).record])
    assert "recovery" in faulty.splitlines()[0]
    assert "lost to recovery" in faulty


def test_trace_report_zero_total_guard():
    assert format_trace_report([]) is not None  # no ZeroDivisionError


# ---------------------------------------------------------------------------
# critical-path report
# ---------------------------------------------------------------------------
def test_critical_report_names_straggler_rank(tmp_path):
    plan = FaultPlan((StragglerFault(rank=1, compute=4.0),), seed=1)
    res = _run(name="FIR", trace=True, fault_plan=plan)
    report = format_critical_report(res.runtime.tracer)
    assert "straggler: rank 1 was slowest" in report
    # same verdict from the exported file
    path = write_chrome_trace(res.runtime.tracer, tmp_path / "t.json")
    assert "straggler: rank 1 was slowest" in format_critical_report(path)


def test_critical_report_without_launches():
    assert "no launch spans" in format_critical_report(Tracer())


# ---------------------------------------------------------------------------
# metrics fed by an autotuned run
# ---------------------------------------------------------------------------
def test_metrics_after_autotuned_run():
    cache = autotune(make_cluster("simd-focused", NODES), cache=TuningCache())
    METRICS.reset()  # count only the measured run
    res = _run(nodes=NODES, trace=False)
    # rebuild with the tuned cache attached
    spec = PERF_WORKLOADS["KMeans"]("small", seed=0)
    cluster = make_cluster("simd-focused", NODES, tuning=cache)
    res = run_on_cucc(spec, cluster)
    hits = METRICS.value("tuning.cache_hits")
    misses = METRICS.value("tuning.cache_misses")
    assert hits + misses >= 1
    assert METRICS.total("comm.gathers") >= 1
    for algo in res.record.allgather_algos:
        assert METRICS.value("comm.gathers", algo=algo) >= 1
    assert METRICS.total("comm.link_bytes") > 0
    assert METRICS.value("runtime.launches", kernel="kmeans_assign") >= 1


def test_fault_metrics_and_retry_counters():
    plan = FaultPlan((TransientFault(op=1),), seed=1)
    _run(name="FIR", fault_plan=plan)
    assert METRICS.total("faults.events") >= 1
    assert METRICS.total("runtime.retries") >= 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_run_trace_and_report(tmp_path, capsys):
    trace = tmp_path / "t.json"
    rc = cli_main(["run", "kmeans", "--nodes", "4", "--trace", str(trace),
                   "--metrics"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "wrote" in out and "comm.gathers" in out
    obj = json.loads(trace.read_text())
    assert validate_chrome_trace(obj) == []
    rc = cli_main(["report", str(trace)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "critical-path report" in out and "straggler" in out


def test_cli_report_rejects_missing_and_bogus_files(tmp_path, capsys):
    assert cli_main(["report", str(tmp_path / "nope.json")]) == 1
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    assert "no launch spans" not in capsys.readouterr().err
    rc = cli_main(["report", str(bogus)])
    assert rc == 0  # empty traceEvents: report degrades gracefully
    assert "no launch spans" in capsys.readouterr().out


def test_cli_trace_requires_cucc(capsys):
    rc = cli_main(["run", "FIR", "--platform", "pgas", "--trace", "x.json"])
    assert rc == 1
    assert "--trace requires" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# import hygiene
# ---------------------------------------------------------------------------
LAZY_OBS_MODULES = (
    "repro.obs.export",
    "repro.obs.profiler",
    "repro.obs.drift",
    "repro.obs.observatory",
    "repro.obs.slo",
    "repro.obs.explain",
)


def test_api_import_does_not_load_lazy_obs_modules():
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    code = (
        "import sys; import repro.api; "
        f"loaded = [m for m in {LAZY_OBS_MODULES!r} if m in sys.modules]; "
        "print(','.join(loaded)); sys.exit(1 if loaded else 0)"
    )
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)
    assert proc.returncode == 0, (
        f"repro.api eagerly imports {proc.stdout.strip()}"
    )


def test_plain_serve_does_not_load_observatory_modules():
    # a server without observatory/slo/postmortem pays nothing: the
    # modules are never even imported
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    lazy = ("repro.obs.observatory", "repro.obs.slo", "repro.obs.explain")
    code = (
        "import sys; "
        "from repro.serve import ServeConfig, serve_requests, "
        "synth_requests; "
        "reqs = synth_requests('FIR', rate=2e6, jobs=2, nodes=2, seed=0); "
        "serve_requests(reqs, ServeConfig(nodes=2)); "
        f"loaded = [m for m in {lazy!r} if m in sys.modules]; "
        "print(','.join(loaded)); sys.exit(1 if loaded else 0)"
    )
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)
    assert proc.returncode == 0, (
        f"plain serving imported {proc.stdout.strip()}"
    )


def test_obs_getattr_resolves_export_names():
    import repro.obs as obs

    assert obs.chrome_trace is chrome_trace
    with pytest.raises(AttributeError):
        obs.definitely_not_a_name

"""Shape assertions for every regenerated table and figure.

These tests run the same drivers as ``benchmarks/`` and assert the
*qualitative* results the paper reports (who wins, where the knees and
crossovers are).  Paper-size profiling runs once per session (cached),
so this module costs roughly one minute total.
"""

import numpy as np
import pytest

from repro.bench import figures as F

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# -- cheap figures -----------------------------------------------------------
def test_fig01_gpu_waits_dominate():
    r = F.fig01_waiting_times()
    assert r.data["gpu_mean_wait_s"] > 100 * (r.data["cpu_mean_wait_s"] + 1)


def test_tab01_matches_paper():
    r = F.tab01_specs()
    rows = {row["Name"]: row for row in r.data["rows"]}
    assert rows["SIMD-Focused"]["FLOPs (Tera)"] == pytest.approx(4.15, 0.01)
    assert rows["Thread-Focused"]["FLOPs (Tera)"] == pytest.approx(8.19, 0.01)
    assert rows["A100 GPU"]["FLOPs (Tera)"] == pytest.approx(19.5, 0.01)
    assert rows["V100 GPU"]["FLOPs (Tera)"] == pytest.approx(15.7, 0.01)
    assert rows["SIMD-Focused"]["Cores/SMs"] == 24
    assert rows["Thread-Focused"]["Cores/SMs"] == 128


def test_fig03_balanced_in_place_wins():
    r = F.fig03_allgather()
    for n, (t_in, t_out, t_imb) in r.data.items():
        assert t_in < t_out
        assert t_in < t_imb


def test_fig06_pipeline_artifacts():
    r = F.fig06_pipeline()
    meta = r.data["metadata"]
    assert meta.tail_divergent and meta.mem_ptrs == ["dest"]
    host = r.data["host_module"]
    for phase in ("phase 1", "phase 2", "phase 3", "MPI_Allgather"):
        assert phase in host
    assert "#pragma omp simd" in r.data["kernel_module"]


def test_fig07_coverage_exact():
    r = F.fig07_coverage()
    assert r.data["BERT (Triton)"] == (12, 12)
    assert r.data["ViT (Triton)"] == (9, 9)
    assert r.data["Hetero-Mark (CUDA)"] == (13, 8)


# -- figures over paper-size profiles (cached across this module) -------------
@pytest.fixture(scope="module")
def fig08():
    return F.fig08_scalability("paper")


def test_fig08_fir_scales_furthest(fig08):
    d = fig08.data
    speedup32 = {
        w: d[w]["simd"][1] / d[w]["simd"][32] for w in d
    }
    assert max(speedup32, key=speedup32.get) in ("FIR", "BinomialOption")
    assert speedup32["FIR"] > 10  # near-linear regime


def test_fig08_kmeans_anomaly(fig08):
    km = fig08.data["KMeans"]["simd"]
    assert km[16] < km[8]  # still improving at 16
    assert km[32] > km[16]  # slower at 32 (paper's callback arithmetic)


def test_fig08_transpose_scales_worst(fig08):
    d = fig08.data
    sp = {w: d[w]["simd"][1] / d[w]["simd"][4] for w in d}
    assert min(sp, key=sp.get) == "Transpose"


def test_fig08_thread_cluster_scales_less_than_simd(fig08):
    d = fig08.data
    # geometric-mean 4-node speedup: SIMD-Focused above Thread-Focused
    def gm(vals):
        return float(np.exp(np.mean(np.log(vals))))

    s4 = gm([d[w]["simd"][1] / d[w]["simd"][4] for w in d])
    t4 = gm([d[w]["thread"][1] / d[w]["thread"][4] for w in d])
    assert s4 > t4


def test_fig09_transpose_comm_dominated():
    r = F.fig09_network_overhead("paper")
    assert r.data["Transpose"][-1] > 0.9  # 32 nodes: nearly all network
    assert r.data["BinomialOption"][0] < 0.05  # 2 nodes: negligible
    assert max(r.data, key=lambda w: r.data[w][-1]) == "Transpose"


def test_fig10_shapes():
    r = F.fig10_cucc_vs_pgas("paper")
    ratios = r.data["ratios"]
    # CuCC >= PGAS essentially everywhere, and the gap grows with nodes
    assert r.data["avg2"] > 2
    assert r.data["avg32"] > r.data["avg2"]
    assert 2 < r.data["avg2"] < 8          # paper: 4.09
    assert 7 < r.data["avg32"] < 20        # paper: 12.81
    # Transpose is the outlier
    assert ratios["Transpose"][32] == max(
        ratios[w][32] for w in ratios
    )
    # GA and BinomialOption near parity (paper section 7.3)
    assert ratios["BinomialOption"][32] < 2
    assert ratios["GA"][32] < 2


def test_fig11_shapes():
    r = F.fig11_cpu_vs_gpu("paper")
    d = r.data["per_workload"]
    gm = r.data["geomeans"]
    # Transpose: CPUs (thread-focused) beat both GPUs
    assert d["Transpose"]["thread"] < d["Transpose"]["a100"]
    assert d["Transpose"]["thread"] < d["Transpose"]["v100"]
    # BinomialOption: thread-focused edges out the A100
    assert d["BinomialOption"]["thread"] < d["BinomialOption"]["a100"]
    # EP and GA: GPUs win by a wide margin (paper: 5-10x)
    for w in ("EP", "GA"):
        assert d[w]["thread"] / d[w]["a100"] > 3
    # ordering of the geomeans matches the paper's Figure 11
    assert gm["simd_a100"] > gm["simd_v100"]
    assert gm["thread_a100"] > gm["thread_v100"]
    assert gm["simd_a100"] > gm["thread_a100"]
    # same order of magnitude as GPUs (the paper's core claim)
    assert gm["simd_a100"] < 10 and gm["thread_a100"] < 5


def test_fig12_cpus_add_throughput():
    r = F.fig12_throughput("paper")
    assert r.data["avg_gain"] > 2  # paper: 2.59x / 3.59x
    for w, d in r.data["per_workload"].items():
        assert d["combined"] > d["gpu"]


def test_fig13_thread_focused_wins_at_equal_peak():
    r = F.fig13_simd_vs_thread("paper")
    gms = r.data["geomeans"]
    assert gms[1] > 1.5  # paper: 4.61x at one node
    # the no-SIMD ablation hurts the SIMD-Focused node
    assert r.data["ablation"]["simd"] > 1.2


def test_fig04_pgas_fails_to_scale():
    r = F.fig04_pgas_scaling("paper")
    # several workloads are SLOWER on 32 nodes than on 1 (paper Figure 4)
    slower = [w for w, v in r.data.items() if v[-1] < 1.0]
    assert len(slower) >= 3
    # and nothing reaches even half of linear scaling except compute
    # monsters with negligible writes
    assert all(v[-1] < 32 for v in r.data.values())


def test_all_figures_render():
    for fn in (F.fig01_waiting_times, F.tab01_specs, F.fig03_allgather,
               F.fig06_pipeline, F.fig07_coverage):
        text = fn().render()
        assert "==" in text and "\n" in text


def test_ablation_regrid_shapes():
    r = F.ablation_regrid("paper")
    # block-starved kernels gain; shared-memory kernels are skipped
    assert r.data["EP"] > 1.5
    assert r.data["NBody"] > 2.0
    assert "BinomialOption" not in r.data and "GA" not in r.data


def test_extra_energy_shapes():
    r = F.extra_energy("paper")
    for d in r.data["per_workload"].values():
        assert d["marginal"] < d["full"]
    # marginal energy ratio is meaningfully below the full-power ratio
    assert r.data["gm_marginal"] < 0.75 * r.data["gm_full"]

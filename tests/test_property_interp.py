"""Property-based testing: the interpreter against a NumPy oracle.

Hypothesis generates random straight-line arithmetic kernels over a small
expression grammar; each is executed by the SPMD interpreter and by a
direct NumPy evaluation of the same expression tree, and the results
must agree bit-for-bit (float32) / exactly (int32).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import BlockExecutor, LaunchConfig
from repro.ir import F32, I32, IRBuilder
from repro.ir.expr import BinOp, Call, Cast, Const, Expr, Load, Param, SReg, Select
from repro.ir.expr import SRegKind, UnOp, Var
from repro.ir.types import PointerType

TPB = 32
GRID = 3
N = TPB * GRID

# -- expression generator ----------------------------------------------------

_leaf_f = st.sampled_from(["in0", "in1", "const", "tid"])
_f_ops = st.sampled_from(["+", "-", "*"])
_calls = st.sampled_from(["sqrt", "fabs", "min", "max", "exp"])


@st.composite
def float_exprs(draw, depth=0):
    """(ir_expr_builder, numpy_fn) pairs over inputs (x0, x1, gid)."""
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(_leaf_f)
        if leaf == "const":
            v = draw(
                st.floats(-4, 4, allow_nan=False, width=32).map(np.float32)
            )
            return (lambda ctx: Const(float(v), F32), lambda x0, x1, g: v)
        if leaf == "tid":
            return (
                lambda ctx: Cast(F32, ctx["gid"]),
                lambda x0, x1, g: g.astype(np.float32),
            )
        idx = 0 if leaf == "in0" else 1
        return (
            lambda ctx, i=idx: Load(ctx[f"in{i}"], ctx["gid"]),
            lambda x0, x1, g, i=idx: (x0, x1)[i][g],
        )
    kind = draw(st.sampled_from(["bin", "call1", "call2", "select"]))
    a_ir, a_np = draw(float_exprs(depth=depth + 1))
    if kind == "bin":
        op = draw(_f_ops)
        b_ir, b_np = draw(float_exprs(depth=depth + 1))
        fn = {"+": np.add, "-": np.subtract, "*": np.multiply}[op]
        return (
            lambda ctx: BinOp(op, a_ir(ctx), b_ir(ctx)),
            lambda x0, x1, g: fn(
                np.float32(a_np(x0, x1, g)), np.float32(b_np(x0, x1, g))
            ).astype(np.float32),
        )
    if kind == "call1":
        name = draw(st.sampled_from(["sqrt", "fabs", "exp"]))
        impl = {"sqrt": np.sqrt, "fabs": np.abs, "exp": np.exp}[name]

        def np_side(x0, x1, g, impl=impl, a_np=a_np):
            with np.errstate(all="ignore"):
                return impl(np.float32(a_np(x0, x1, g))).astype(np.float32)

        return (lambda ctx: Call(name, (a_ir(ctx),)), np_side)
    if kind == "call2":
        name = draw(st.sampled_from(["min", "max"]))
        impl = {"min": np.minimum, "max": np.maximum}[name]
        b_ir, b_np = draw(float_exprs(depth=depth + 1))
        return (
            lambda ctx: Call(name, (a_ir(ctx), b_ir(ctx))),
            lambda x0, x1, g: impl(
                np.float32(a_np(x0, x1, g)), np.float32(b_np(x0, x1, g))
            ).astype(np.float32),
        )
    # select on a comparison
    b_ir, b_np = draw(float_exprs(depth=depth + 1))
    c_ir, c_np = draw(float_exprs(depth=depth + 1))
    return (
        lambda ctx: Select(
            BinOp("<", a_ir(ctx), b_ir(ctx)), c_ir(ctx), a_ir(ctx)
        ),
        lambda x0, x1, g: np.where(
            np.float32(a_np(x0, x1, g)) < np.float32(b_np(x0, x1, g)),
            np.float32(c_np(x0, x1, g)),
            np.float32(a_np(x0, x1, g)),
        ).astype(np.float32),
    )


@given(float_exprs(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_random_float_expressions_match_numpy(pair, seed):
    ir_fn, np_fn = pair
    b = IRBuilder("prop")
    in0 = b.pointer_param("in0", F32)
    in1 = b.pointer_param("in1", F32)
    out = b.pointer_param("out", F32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    ctx = {"in0": in0, "in1": in1, "gid": gid}
    b.store(out, gid, ir_fn(ctx))
    kernel = b.finish()

    rng = np.random.default_rng(seed)
    x0 = rng.uniform(-4, 4, N).astype(np.float32)
    x1 = rng.uniform(-4, 4, N).astype(np.float32)
    got = np.zeros(N, dtype=np.float32)
    ex = BlockExecutor(
        kernel,
        LaunchConfig.make(GRID, TPB),
        {"in0": x0, "in1": x1, "out": got},
    )
    ex.run_blocks(range(GRID), span=2)
    g = np.arange(N)
    with np.errstate(all="ignore"):
        want = np.broadcast_to(np.asarray(np_fn(x0, x1, g)), (N,)).astype(
            np.float32
        )
    assert np.array_equal(got, want, equal_nan=True)


# -- integer kernels with guards ----------------------------------------------
@given(
    bound=st.integers(0, N),
    mul=st.integers(-3, 3),
    add=st.integers(-50, 50),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_guarded_int_kernels_match_numpy(bound, mul, add, seed):
    b = IRBuilder("prop_int")
    src = b.pointer_param("src", I32)
    out = b.pointer_param("out", I32)
    n = b.scalar_param("n", I32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    with b.if_(gid < n):
        b.store(out, gid, b.load(src, gid) * mul + add)
    kernel = b.finish()

    rng = np.random.default_rng(seed)
    x = rng.integers(-1000, 1000, N).astype(np.int32)
    got = np.zeros(N, dtype=np.int32)
    ex = BlockExecutor(
        kernel,
        LaunchConfig.make(GRID, TPB),
        {"src": x, "out": got, "n": bound},
    )
    ex.run_blocks(range(GRID))
    want = np.zeros(N, dtype=np.int32)
    want[:bound] = (
        x[:bound].astype(np.int64) * mul + add
    ).astype(np.int32)
    assert np.array_equal(got, want)

"""Interpreter semantics: C arithmetic, masks, divergence, loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpError, LaunchError
from repro.frontend.parser import parse_kernel
from repro.interp import BlockExecutor, LaunchConfig, OpCounters, run_grid
from repro.interp.machine import _c_int_div, _c_int_mod


# ---------------------------------------------------------------------------
# C integer semantics
# ---------------------------------------------------------------------------
@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_c_int_div_matches_c(a, b):
    got = int(_c_int_div(np.int64(a), np.int64(b)))
    if b == 0:
        assert got == 0  # masked-lane safety convention
    else:
        import math

        assert got == math.trunc(a / b)


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_c_int_mod_matches_c(a, b):
    got = int(_c_int_mod(np.int64(a), np.int64(b)))
    if b == 0:
        assert got == 0
    else:
        assert got == a - int(np.trunc(np.float64(a) / b)) * b
        if a >= 0 and b != 0:
            assert got >= 0  # sign follows dividend


def test_int_division_in_kernel():
    src = """
__global__ void k(int *q, int *r, const int *a, const int *b, int n) {
    int g = threadIdx.x;
    if (g < n) {
        q[g] = a[g] / b[g];
        r[g] = a[g] % b[g];
    }
}
"""
    a = np.array([7, -7, 7, -7, 1], dtype=np.int32)
    b = np.array([2, 2, -2, -2, 3], dtype=np.int32)
    q = np.zeros(5, dtype=np.int32)
    r = np.zeros(5, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8),
             {"q": q, "r": r, "a": a, "b": b, "n": 5})
    assert list(q) == [3, -3, -3, 3, 0]
    assert list(r) == [1, -1, 1, -1, 1]


def test_float32_stays_float32():
    src = """
__global__ void k(float *y, const float *x) {
    y[threadIdx.x] = x[threadIdx.x] * 0.1f + 1.0f;
}
"""
    x = np.random.default_rng(0).random(16).astype(np.float32)
    y = np.zeros(16, dtype=np.float32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 16), {"y": y, "x": x})
    ref = (x * np.float32(0.1) + np.float32(1.0)).astype(np.float32)
    assert np.array_equal(y, ref)  # bit-exact f32 arithmetic


def test_unsigned_wraparound():
    src = """
__global__ void k(uint *y) {
    uint big = 4000000000u;
    y[threadIdx.x] = big + big;
}
"""
    y = np.zeros(4, dtype=np.uint32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 4), {"y": y})
    assert y[0] == (4000000000 * 2) % (1 << 32)


# ---------------------------------------------------------------------------
# divergence
# ---------------------------------------------------------------------------
def test_if_else_masks():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    if (t % 2 == 0) { y[t] = 10; } else { y[t] = 20; }
}
"""
    y = np.zeros(8, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8), {"y": y})
    assert list(y) == [10, 20] * 4


def test_nested_divergence_and_variable_merge():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    int v = 0;
    if (t < 4) {
        v = 1;
        if (t < 2) v = 2;
    } else {
        v = 3;
    }
    y[t] = v;
}
"""
    y = np.zeros(8, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8), {"y": y})
    assert list(y) == [2, 2, 1, 1, 3, 3, 3, 3]


def test_early_return_retires_lanes():
    src = """
__global__ void k(int *y, int n) {
    int t = threadIdx.x;
    y[t] = 1;
    if (t >= n) return;
    y[t] = 2;
}
"""
    y = np.zeros(8, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8), {"y": y, "n": 3})
    assert list(y) == [2, 2, 2, 1, 1, 1, 1, 1]


def test_return_inside_loop_kills_lane_for_good():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    int acc = 0;
    for (int i = 0; i < 10; i++) {
        if (i == t) return;
        acc += 1;
    }
    y[t] = acc;
}
"""
    y = np.full(16, -1, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 16), {"y": y})
    # threads 0..9 returned inside the loop; 10..15 completed with acc=10
    assert list(y[:10]) == [-1] * 10
    assert list(y[10:]) == [10] * 6


def test_break_and_continue():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    int acc = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 5 && t == 0) break;
        if (i % 2 == 1) continue;
        acc += 1;
    }
    y[t] = acc;
}
"""
    y = np.zeros(4, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 4), {"y": y})
    assert y[0] == 3  # i = 0,2,4 then break at 5
    assert all(v == 5 for v in y[1:])  # i = 0,2,4,6,8


def test_nested_loop_break_is_inner_only():
    src = """
__global__ void k(int *y) {
    int acc = 0;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 10; j++) {
            if (j == 2) break;
            acc += 1;
        }
    }
    y[threadIdx.x] = acc;
}
"""
    y = np.zeros(2, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 2), {"y": y})
    assert y[0] == 6  # 3 outer iterations x 2 inner


def test_thread_variant_loop_bounds():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    int acc = 0;
    for (int i = 0; i < t; i++) acc += i;
    y[t] = acc;
}
"""
    y = np.zeros(8, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8), {"y": y})
    assert list(y) == [sum(range(t)) for t in range(8)]


def test_while_with_thread_variant_condition():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    int v = t;
    while (v < 100) v = v * 2 + 1;
    y[t] = v;
}
"""
    y = np.zeros(8, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8), {"y": y})
    for t in range(8):
        v = t
        while v < 100:
            v = v * 2 + 1
        assert y[t] == v


def test_select_evaluates_both_sides_safely():
    # ternary with an out-of-range index on the untaken side must not trap
    src = """
__global__ void k(float *y, const float *x, int n) {
    int t = threadIdx.x;
    y[t] = (t < n) ? x[t] : 0.0f;
}
"""
    x = np.ones(4, dtype=np.float32)
    y = np.zeros(8, dtype=np.float32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8),
             {"y": y, "x": x, "n": 4})
    assert list(y) == [1, 1, 1, 1, 0, 0, 0, 0]


# ---------------------------------------------------------------------------
# launch validation
# ---------------------------------------------------------------------------
def test_missing_argument():
    k = parse_kernel("__global__ void k(float *y, int n) { y[0] = (float)n; }")
    with pytest.raises(LaunchError, match="missing argument"):
        BlockExecutor(k, LaunchConfig.make(1, 1), {"y": np.zeros(1, np.float32)})


def test_wrong_dtype_argument():
    k = parse_kernel("__global__ void k(float *y) { y[0] = 1.0f; }")
    with pytest.raises(LaunchError, match="dtype"):
        BlockExecutor(k, LaunchConfig.make(1, 1), {"y": np.zeros(1, np.float64)})


def test_unknown_argument():
    k = parse_kernel("__global__ void k(float *y) { y[0] = 1.0f; }")
    with pytest.raises(LaunchError, match="unknown arguments"):
        BlockExecutor(
            k,
            LaunchConfig.make(1, 1),
            {"y": np.zeros(1, np.float32), "zzz": 1},
        )


def test_block_id_out_of_range():
    k = parse_kernel("__global__ void k(float *y) { y[0] = 1.0f; }")
    ex = BlockExecutor(k, LaunchConfig.make(2, 1), {"y": np.zeros(1, np.float32)})
    with pytest.raises(LaunchError):
        ex.run_block(5)

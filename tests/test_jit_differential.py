"""The differential gate as a test suite: interp vs JIT, bit-for-bit.

The gate is the PR's bug-finder: every workload kernel runs through the
reference tree-walking interpreter and the compiled fast path on copies
of the same buffers, and *everything* observable must match exactly —
output bytes, every OpCounters field (64-byte-line traffic included),
and, at the runtime level, the three CuCC phase times.  Any divergence
is a bug in one of the two backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.jit import diff_grid, run_gate
from repro.interp.jit.differential import diff_spec_grid, diff_workload
from repro.workloads import EXTRA_WORKLOADS, PERF_WORKLOADS

ZOO = {**PERF_WORKLOADS, **EXTRA_WORKLOADS}


# ---------------------------------------------------------------------------
# full gate (grid + runtime levels, every workload)
# ---------------------------------------------------------------------------


def test_full_differential_gate_small():
    """Every workload, both comparison levels, zero divergences.

    This is the same check ``repro jit`` runs; covers buffers, counters
    and CuCC phase times in one pass."""
    results = run_gate("small", seed=0)
    assert len(results) == len(ZOO)
    bad = [r for r in results if not r.identical]
    assert not bad, "\n".join(
        f"{r.name}: {m}" for r in bad for m in r.mismatches
    )


# ---------------------------------------------------------------------------
# property test: random workload x seed x span
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(sorted(ZOO)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    span=st.sampled_from([1, 3, 16, 256]),
)
def test_backends_bit_identical_under_random_inputs(name, seed, span):
    spec = ZOO[name]("small", seed=seed)
    res = diff_spec_grid(spec, span=span)
    assert res.identical, f"{name} seed={seed} span={span}: {res.mismatches}"


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    grid=st.integers(min_value=1, max_value=7),
    block=st.sampled_from([1, 32, 64, 160]),
    n=st.integers(min_value=1, max_value=500),
)
def test_guarded_saxpy_identical_across_odd_shapes(seed, grid, block, n):
    """Ragged launches: partial tails, single-lane blocks, n far from the
    lane count — the masked fallback territory."""
    from repro.frontend.parser import parse_kernel

    kernel = parse_kernel("""
__global__ void saxpy(float* x, float* y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = a * x[i] + y[i]; }
}""")
    rng = np.random.default_rng(seed)
    cells = grid * block
    res = diff_grid(
        kernel, grid, block,
        {"x": rng.standard_normal(cells).astype(np.float32),
         "y": rng.standard_normal(cells).astype(np.float32)},
        {"a": 1.5, "n": n},
    )
    assert res.identical, res.mismatches


# ---------------------------------------------------------------------------
# runtime-level phase-time identity, spot check
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["NBody", "FIR"])
def test_runtime_phase_times_identical(name):
    spec = ZOO[name]("small", seed=3)
    res = diff_workload(spec, nodes=2)
    assert res.identical, res.mismatches

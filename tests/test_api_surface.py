"""The public API facade and launch-geometry helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.errors import LaunchError
from repro.interp.grid import LaunchConfig, dim3


def test_api_exports_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_api_end_to_end_docstring_flow():
    kernel = api.parse_cuda_kernel(
        """
__global__ void scale(const float *x, float *y, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) y[id] = x[id] * 2.0f;
}
"""
    )
    cluster = api.make_cluster("simd-focused", 2)
    rt = api.CuCCRuntime(cluster)
    compiled = rt.compile(kernel)
    assert compiled.distributable
    n = 700
    rt.memory.alloc("x", n, np.float32)
    rt.memory.alloc("y", n, np.float32)
    host = np.random.default_rng(0).random(n).astype(np.float32)
    rt.memory.memcpy_h2d("x", host)
    rec = rt.launch(compiled, 3, 256, {"x": "x", "y": "y", "n": n})
    out = rt.memory.memcpy_d2h("y", check_consistency=True)
    assert np.array_equal(out, (host * np.float32(2.0)))
    assert rec.time > 0


def test_dsl_reexported():
    from repro.ir import F32, I32

    @api.kernel(x=api.ptr(F32), n=I32)
    def zero(b, x, n):
        gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
        with b.if_(gid < n):
            b.store(x, gid, 0.0)

    assert zero.name == "zero"


# ---------------------------------------------------------------------------
# LaunchConfig
# ---------------------------------------------------------------------------
def test_dim3_normalization():
    assert dim3(5) == (5, 1, 1)
    assert dim3((2, 3)) == (2, 3, 1)
    assert dim3((2, 3, 4)) == (2, 3, 4)
    with pytest.raises(LaunchError):
        dim3(0)
    with pytest.raises(LaunchError):
        dim3((4, -1))


@given(
    gx=st.integers(1, 9),
    gy=st.integers(1, 5),
    gz=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_block_coords_roundtrip(gx, gy, gz):
    cfg = LaunchConfig.make((gx, gy, gz), 8)
    for bid in range(cfg.num_blocks):
        coords = cfg.block_coords(bid)
        assert cfg.linear_block_id(coords) == bid
        assert all(0 <= c < g for c, g in zip(coords, cfg.grid))
    with pytest.raises(LaunchError):
        cfg.block_coords(cfg.num_blocks)


def test_thread_coords_cover_block():
    cfg = LaunchConfig.make(1, (4, 3, 2))
    tx, ty, tz = cfg.thread_coords()
    assert len(tx) == 24
    seen = set(zip(tx.tolist(), ty.tolist(), tz.tolist()))
    assert len(seen) == 24
    assert tx.max() == 3 and ty.max() == 2 and tz.max() == 1
    # x-fastest ordering, as in CUDA
    assert list(tx[:4]) == [0, 1, 2, 3]
    assert ty[4] == 1 and tz[12] == 1


def test_counts():
    cfg = LaunchConfig.make((5, 2), (16, 4))
    assert cfg.num_blocks == 10
    assert cfg.threads_per_block == 64
    assert cfg.total_threads == 640

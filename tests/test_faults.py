"""Fault injection and fault-tolerant three-phase execution.

The contract under test: a seeded :class:`FaultPlan` is delivered
deterministically; transient collective failures are retried; stragglers
are detected; permanent node crashes trigger shrink-and-repartition
recovery that reproduces the fault-free result bit-for-bit at a strictly
higher modeled cost; and a runtime constructed *without* a plan behaves
exactly as if fault injection did not exist.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_on_cucc
from repro.cluster import Cluster, make_cluster
from repro.cluster.faults import (
    CorruptionFault,
    FaultPlan,
    NodeCrash,
    StragglerFault,
    TransientFault,
    parse_fault_spec,
)
from repro.errors import (
    ClusterError,
    CollectiveTimeout,
    DataCorruptionError,
    NodeFailure,
)
from repro.hw import SIMD_FOCUSED_NODE
from repro.runtime import CuCCRuntime, RecoveryPolicy
from repro.workloads import fir, vecadd

NODES = 4


def _cluster(n=NODES):
    return make_cluster("simd-focused", n)


@pytest.fixture(scope="module")
def spec():
    return vecadd.build("small")


@pytest.fixture(scope="module")
def reference(spec):
    """Fault-free run: time and output buffers."""
    res = run_on_cucc(spec, _cluster())
    out = {
        o: res.runtime.memory.memcpy_d2h(o, check_consistency=True)
        for o in spec.outputs
    }
    return res, out


def _outputs(spec, res):
    return {
        o: res.runtime.memory.memcpy_d2h(o, check_consistency=True)
        for o in spec.outputs
    }


# ---------------------------------------------------------------------------
# plan construction and parsing
# ---------------------------------------------------------------------------
def test_crash_needs_exactly_one_trigger():
    with pytest.raises(ClusterError):
        NodeCrash(rank=0)
    with pytest.raises(ClusterError):
        NodeCrash(rank=0, phase="partial", time=1.0)
    with pytest.raises(ClusterError):
        NodeCrash(rank=0, phase="warmup")


def test_straggler_multipliers_must_slow_down():
    with pytest.raises(ClusterError):
        StragglerFault(rank=0, compute=0.5)


def test_parse_fault_spec_grammar():
    faults = parse_fault_spec(
        "crash:rank=1,phase=allgather; transient:op=2,count=3;"
        "corrupt:op=1,rank=0; straggler:rank=3,compute=4.0,network=2.0;"
        "crash:rank=2,time=0.004"
    )
    assert faults == (
        NodeCrash(rank=1, phase="allgather"),
        TransientFault(op=2, count=3),
        CorruptionFault(op=1, rank=0),
        StragglerFault(rank=3, compute=4.0, network=2.0),
        NodeCrash(rank=2, time=0.004),
    )


@pytest.mark.parametrize(
    "bad",
    [
        "explode:rank=1",
        "crash:phase=partial",  # missing rank
        "crash:rank=1,phase=partial,color=red",  # unknown key
        "crash:rank=x,phase=partial",  # bad int
        "transient:op",  # not key=value
    ],
)
def test_parse_fault_spec_rejects(bad):
    with pytest.raises(ClusterError):
        parse_fault_spec(bad)


# ---------------------------------------------------------------------------
# transient + corruption: retried, then succeeds
# ---------------------------------------------------------------------------
def test_transient_collective_retried_then_succeeds(spec, reference):
    ref, ref_out = reference
    plan = FaultPlan((TransientFault(op=1),), seed=3)
    res = run_on_cucc(spec, _cluster(), fault_plan=plan)
    assert res.record.retries == 1
    assert res.record.recoveries == 0
    assert res.record.phases.recovery > 0
    assert res.time > ref.time
    out = _outputs(spec, res)
    for o in spec.outputs:
        assert np.array_equal(out[o], ref_out[o])
    kinds = [e.kind for e in res.record.fault_events]
    assert "transient" in kinds and "retry" in kinds


def test_multi_shot_transient_exhausts_retry_budget(spec):
    # 5 consecutive failures > max_retries=3: the launch must not succeed
    plan = FaultPlan((TransientFault(op=1, count=5),), seed=3)
    with pytest.raises(CollectiveTimeout):
        run_on_cucc(spec, _cluster(), fault_plan=plan, verify=False)


def test_corruption_detected_and_repaired_by_retry(spec, reference):
    ref, ref_out = reference
    plan = FaultPlan((CorruptionFault(op=1, rank=1),), seed=9)
    res = run_on_cucc(spec, _cluster(), fault_plan=plan)
    assert res.record.retries == 1
    assert res.time > ref.time
    out = _outputs(spec, res)
    for o in spec.outputs:
        assert np.array_equal(out[o], ref_out[o])
    assert "corruption" in [e.kind for e in res.record.fault_events]


def test_corruption_surfaces_without_retry_policy():
    """At the communicator level a corrupted Allgather raises, and the
    destination replicas really differ from the source payload."""
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    from repro.cluster.faults import FaultInjector

    cl.comm.injector = FaultInjector(FaultPlan((CorruptionFault(op=1, rank=0),)))
    for node in cl.nodes:
        buf = node.alloc("d", 8, np.int64)
        buf[node.rank * 4 : (node.rank + 1) * 4] = node.rank + 1
    with pytest.raises(DataCorruptionError):
        cl.comm.allgather_in_place("d", 0, 4)
    # rank 0's own copy of its chunk is intact; rank 1's received copy is not
    assert list(cl.nodes[0].buffer("d")[:4]) == [1, 1, 1, 1]
    assert list(cl.nodes[1].buffer("d")[:4]) != [1, 1, 1, 1]


# ---------------------------------------------------------------------------
# stragglers
# ---------------------------------------------------------------------------
def test_straggler_detected_by_timeout(spec, reference):
    ref, _ = reference
    plan = FaultPlan((StragglerFault(rank=1, compute=10.0),), seed=0)
    res = run_on_cucc(spec, _cluster(), fault_plan=plan)
    events = res.record.fault_events
    detected = [e for e in events if e.kind == "straggler-detected"]
    assert len(detected) == 1 and detected[0].rank == 1
    assert res.time > ref.time  # the slow node stretches the partial phase
    assert res.runtime.cluster.num_nodes == NODES  # detection only, no evict


def test_straggler_eviction_recovers_correct_result(spec, reference):
    _, ref_out = reference
    plan = FaultPlan((StragglerFault(rank=1, compute=10.0),), seed=0)
    res = run_on_cucc(
        spec, _cluster(), fault_plan=plan,
        recovery=RecoveryPolicy(evict_stragglers=True),
    )
    assert res.record.recoveries == 1
    assert res.runtime.cluster.num_nodes == NODES - 1
    out = _outputs(spec, res)
    for o in spec.outputs:
        assert np.array_equal(out[o], ref_out[o])


# ---------------------------------------------------------------------------
# permanent crashes: shrink-and-repartition recovery
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("phase", ["partial", "allgather", "callback"])
def test_crash_at_each_phase_boundary_recovers(spec, reference, phase):
    ref, ref_out = reference
    plan = FaultPlan((NodeCrash(rank=2, phase=phase),), seed=5)
    res = run_on_cucc(spec, _cluster(), fault_plan=plan)
    rec = res.record
    assert rec.recoveries == 1
    assert res.runtime.cluster.num_nodes == NODES - 1
    assert res.time > ref.time  # modeled recovery cost is never free
    out = _outputs(spec, res)
    for o in spec.outputs:
        assert np.array_equal(out[o], ref_out[o])
    kinds = [e.kind for e in rec.fault_events]
    assert kinds[0] == "crash" and "recover-shrink" in kinds
    # a crash before the invariant is restored must restore + re-plan;
    # after the Allgather only the callback work is replayed
    if phase in ("partial", "allgather"):
        assert "restore" in kinds and "replan" in kinds
    else:
        assert "restore" not in kinds and "replan" not in kinds


def test_time_triggered_crash_recovers(spec, reference):
    _, ref_out = reference
    plan = FaultPlan((NodeCrash(rank=0, time=0.0),), seed=5)
    res = run_on_cucc(spec, _cluster(), fault_plan=plan)
    assert res.record.recoveries == 1
    out = _outputs(spec, res)
    for o in spec.outputs:
        assert np.array_equal(out[o], ref_out[o])


def test_two_crashes_in_one_launch(spec, reference):
    _, ref_out = reference
    plan = FaultPlan(
        (NodeCrash(rank=1, phase="partial"), NodeCrash(rank=3, phase="allgather")),
        seed=5,
    )
    res = run_on_cucc(spec, _cluster(), fault_plan=plan)
    assert res.record.recoveries == 2
    assert res.runtime.cluster.num_nodes == NODES - 2
    out = _outputs(spec, res)
    for o in spec.outputs:
        assert np.array_equal(out[o], ref_out[o])


def test_tail_divergent_kernel_survives_crash():
    """FIR has callback blocks (tail divergence); recovery must keep them
    correct too."""
    spec_fir = fir.build("small")
    ref = run_on_cucc(spec_fir, _cluster())
    ref_out = {
        o: ref.runtime.memory.memcpy_d2h(o, check_consistency=True)
        for o in spec_fir.outputs
    }
    plan = FaultPlan((NodeCrash(rank=1, phase="allgather"),), seed=2)
    res = run_on_cucc(spec_fir, _cluster(), fault_plan=plan)
    assert res.record.recoveries == 1
    assert not res.record.plan.replicated  # re-planned, still distributed
    out = {
        o: res.runtime.memory.memcpy_d2h(o, check_consistency=True)
        for o in spec_fir.outputs
    }
    for o in spec_fir.outputs:
        assert np.array_equal(out[o], ref_out[o])


def test_unrecoverable_when_all_nodes_crash(spec):
    plan = FaultPlan(
        (NodeCrash(rank=0, phase="allgather"), NodeCrash(rank=1, phase="allgather")),
        seed=1,
    )
    with pytest.raises(ClusterError, match="unrecoverable"):
        run_on_cucc(spec, _cluster(2), fault_plan=plan, verify=False)


def test_min_nodes_policy_refuses_deep_shrink(spec):
    plan = FaultPlan((NodeCrash(rank=2, phase="partial"),), seed=1)
    with pytest.raises(ClusterError, match="unrecoverable"):
        run_on_cucc(
            spec, _cluster(), fault_plan=plan, verify=False,
            recovery=RecoveryPolicy(min_nodes=NODES),
        )


def test_dead_node_refuses_memory_access():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    cl.nodes[1].alloc("d", 4, np.int32)
    cl.nodes[1].fail("test")
    with pytest.raises(NodeFailure) as ei:
        cl.nodes[1].buffer("d")
    assert ei.value.ranks == (1,)
    assert "DOWN" in repr(cl.nodes[1])


def test_remove_dead_reranks_survivors():
    cl = Cluster(SIMD_FOCUSED_NODE, 4)
    cl.nodes[1].fail("test")
    removed = cl.remove_dead()
    assert [n.born_rank for n in removed] == [1]
    assert cl.num_nodes == 3
    assert [n.rank for n in cl.nodes] == [0, 1, 2]  # contiguous again
    assert [n.born_rank for n in cl.nodes] == [0, 2, 3]  # identity kept
    assert cl.comm.size == 3


# ---------------------------------------------------------------------------
# determinism: same plan, same seed => identical everything
# ---------------------------------------------------------------------------
def test_deterministic_replay_explicit_plan(spec):
    plan = FaultPlan(
        (NodeCrash(rank=2, phase="allgather"), TransientFault(op=1),
         CorruptionFault(op=2, rank=0)),
        seed=11,
    )
    runs = []
    for _ in range(2):
        res = run_on_cucc(spec, _cluster(), fault_plan=plan, verify=False)
        runs.append(res)
    a, b = runs
    assert a.time == b.time  # identical modeled times, bit for bit
    assert [e.describe() for e in a.record.fault_events] == [
        e.describe() for e in b.record.fault_events
    ]
    for o in spec.outputs:
        assert np.array_equal(
            a.runtime.memory.memcpy_d2h(o), b.runtime.memory.memcpy_d2h(o)
        )


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_deterministic_replay_random_plans(seed):
    spec = vecadd.build("small")
    plan = FaultPlan.random(
        seed=seed, num_nodes=NODES, crashes=1, stragglers=1, transients=1
    )
    a = run_on_cucc(spec, _cluster(), fault_plan=plan, verify=False)
    b = run_on_cucc(spec, _cluster(), fault_plan=plan, verify=False)
    assert a.time == b.time
    assert a.record.retries == b.record.retries
    assert a.record.recoveries == b.record.recoveries
    assert [e.describe() for e in a.record.fault_events] == [
        e.describe() for e in b.record.fault_events
    ]
    for o in spec.outputs:
        assert np.array_equal(
            a.runtime.memory.memcpy_d2h(o), b.runtime.memory.memcpy_d2h(o)
        )


# ---------------------------------------------------------------------------
# zero overhead by default
# ---------------------------------------------------------------------------
def test_no_fault_plan_is_bit_identical_to_seed_behaviour(spec, reference):
    ref, ref_out = reference
    # an *empty* plan must also take the plain path
    res = run_on_cucc(spec, _cluster(), fault_plan=FaultPlan())
    assert res.runtime.injector is None
    assert res.time == ref.time
    assert res.record.phases.recovery == 0.0
    assert res.record.fault_events == []
    out = _outputs(spec, res)
    for o in spec.outputs:
        assert np.array_equal(out[o], ref_out[o])
    # trace reports render identically (no fault summary line)
    assert res.runtime.report() == ref.runtime.report()
    assert "faults" not in ref.runtime.report()


def test_fault_free_describe_has_no_fault_suffix(reference):
    ref, _ = reference
    assert "recover" not in ref.record.describe()


# ---------------------------------------------------------------------------
# checkpoint/restore building blocks
# ---------------------------------------------------------------------------
def test_checkpoint_restore_roundtrip():
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    rt = CuCCRuntime(cl)
    rt.memory.alloc("x", 8, np.float32)
    rt.memory.memcpy_h2d("x", np.arange(8, dtype=np.float32))
    ckpt = rt.memory.checkpoint(["x"], label="t")
    for node in cl.nodes:
        node.buffer("x")[:] = -1.0
    t_before = cl.max_clock
    rt.memory.restore(ckpt)
    assert cl.max_clock == t_before  # restoring never rewinds clocks
    assert np.array_equal(
        rt.memory.memcpy_d2h("x", check_consistency=True),
        np.arange(8, dtype=np.float32),
    )
    assert ckpt.nbytes == 32


def test_checkpoint_restore_onto_shrunken_cluster():
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    rt = CuCCRuntime(cl)
    rt.memory.alloc("x", 4, np.int32)
    rt.memory.memcpy_h2d("x", np.array([1, 2, 3, 4], np.int32))
    ckpt = rt.memory.checkpoint()
    cl.nodes[2].fail("test")
    cl.remove_dead()
    for node in cl.nodes:
        node.buffer("x")[:] = 0
    rt.memory.restore(ckpt)
    assert np.array_equal(
        rt.memory.memcpy_d2h("x", check_consistency=True),
        np.array([1, 2, 3, 4], np.int32),
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_run_with_faults(capsys):
    from repro.cli import main

    rc = main([
        "run", "VecAdd", "--nodes", "4",
        "--faults", "crash:rank=1,phase=allgather",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "crash rank 1" in out
    assert "recover-shrink" in out
    assert "verified on all 3 node replicas" in out


def test_cli_rejects_bad_fault_spec(capsys):
    from repro.cli import main

    rc = main(["run", "VecAdd", "--faults", "explode:rank=1"])
    assert rc == 1
    assert "unknown fault kind" in capsys.readouterr().err


# -- RecoveryPolicy validation (elastic-ops satellite) -----------------------


@pytest.mark.parametrize(
    "kwargs, msg",
    [
        (dict(max_retries=-1), "max_retries"),
        (dict(backoff_base_s=-0.1), "backoff_base_s"),
        (dict(backoff_factor=0.0), "backoff_factor"),
        (dict(failure_detect_s=-1.0), "failure_detect_s"),
        (dict(straggler_factor=0.0), "straggler_factor"),
        (dict(min_nodes=0), "min_nodes"),
    ],
)
def test_recovery_policy_validates_fields(kwargs, msg):
    with pytest.raises(ValueError, match=msg):
        RecoveryPolicy(**kwargs)


def test_recovery_exhausted_diagnosis_names_cause(spec):
    """The surfaced error keeps its concrete class and carries a
    one-line diagnosis (what failed, which boundary, what survived)."""
    plan = FaultPlan((TransientFault(op=1, count=5),), seed=3)
    with pytest.raises(CollectiveTimeout) as ei:
        run_on_cucc(spec, _cluster(), fault_plan=plan, verify=False)
    msg = str(ei.value)
    assert "recovery exhausted" in msg
    assert "after 3 retries" in msg

"""Differential property: the sanitizer has zero false positives.

Hypothesis generates small kernels that are race-free *by construction*
(every store lands at an injective ``gid * stride + j`` footprint and
values only read an array no thread ever writes), then runs each one

* through the reference interpreter with and without ``sanitize=True``
  — results must be bit-identical and the report clean,
* through the full CuCC runtime on a multi-node cluster with the
  sanitizer on — every node replica must match the reference and both
  the compile-time (static) and launch-time (dynamic) reports must be
  clean, and
* through the single-CPU baseline runtime with the sanitizer on — same
  contract.

A finding on any of these would be a false positive: the three
executions agree, so there is no hazard to report.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SingleCPURuntime
from repro.cluster import Cluster
from repro.hw import SIMD_FOCUSED_NODE
from repro.interp import LaunchConfig, run_grid
from repro.ir import F32, I32, IRBuilder
from repro.runtime import CuCCRuntime


@st.composite
def clean_kernel_cases(draw):
    """A randomized race-free (kernel, grid, block, n, out_elems) bundle."""
    block = draw(st.sampled_from([8, 32, 64]))
    grid = draw(st.integers(2, 8))
    writes_per_thread = draw(st.integers(1, 3))
    guard = draw(st.sampled_from(["none", "if", "return"]))
    slack = draw(st.integers(0, block + 3))
    value_kind = draw(st.sampled_from(["affine", "input", "loopmix"]))
    stride = draw(st.sampled_from([writes_per_thread, writes_per_thread + 1]))

    b = IRBuilder("clean_prop")
    src = b.pointer_param("src", F32)
    dest = b.pointer_param("dest", F32)
    n = b.scalar_param("n", I32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    if guard == "return":
        with b.if_(gid >= n):
            b.ret()

    def emit_stores(bb):
        with bb.for_("j", 0, writes_per_thread) as j:
            idx = gid * stride + j
            if value_kind == "affine":
                val = bb.cast(F32, gid * 3 + j)
            elif value_kind == "input":
                val = bb.load(src, gid) + bb.cast(F32, j)
            else:
                val = bb.load(src, (gid + j) % n) * 0.5
            bb.store(dest, idx, val)

    if guard == "if":
        with b.if_(gid < n):
            emit_stores(b)
    else:
        emit_stores(b)

    kernel = b.finish()
    n_bound = grid * block if guard == "none" else grid * block - slack
    out_elems = grid * block * stride + writes_per_thread
    return kernel, grid, block, n_bound, out_elems


def _run_on_runtime(rt, kernel, grid, block, src, out_elems, n_bound, ref):
    rt.memory.alloc("src", src.size, src.dtype)
    rt.memory.memcpy_h2d("src", src)
    rt.memory.alloc("dest", out_elems, np.float32)
    rt.memory.memcpy_h2d("dest", np.zeros(out_elems, np.float32))
    compiled = rt.compile(kernel)
    record = rt.launch(
        compiled, grid, block, {"src": "src", "dest": "dest", "n": n_bound}
    )
    got = rt.memory.memcpy_d2h("dest", check_consistency=True)
    np.testing.assert_array_equal(got, ref)
    assert compiled.sanitizer_report.clean, compiled.sanitizer_report.describe()
    assert record.sanitizer_report.clean, record.sanitizer_report.describe()


@given(clean_kernel_cases(), st.integers(2, 5), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_sanitizer_zero_false_positives_across_runtimes(case, nodes, seed):
    kernel, grid, block, n_bound, out_elems = case
    rng = np.random.default_rng(seed)
    src = rng.random(max(out_elems, grid * block)).astype(np.float32)
    cfg = LaunchConfig.make(grid, block)

    # interpreter, plain
    ref = np.zeros(out_elems, dtype=np.float32)
    run_grid(kernel, cfg, {"src": src, "dest": ref, "n": n_bound})

    # interpreter, sanitizer on: identical results, clean report
    dest = np.zeros(out_elems, dtype=np.float32)
    ex = run_grid(
        kernel, cfg, {"src": src, "dest": dest, "n": n_bound}, sanitize=True
    )
    np.testing.assert_array_equal(dest, ref)
    assert ex.sanitizer.report.clean, ex.sanitizer.report.describe()

    # full CuCC runtime on a real multi-node cluster
    _run_on_runtime(
        CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, nodes), sanitize=True),
        kernel, grid, block, src, out_elems, n_bound, ref,
    )

    # single-CPU (CuPBoP-style) baseline
    _run_on_runtime(
        SingleCPURuntime(SIMD_FOCUSED_NODE, sanitize=True),
        kernel, grid, block, src, out_elems, n_bound, ref,
    )

"""Transformations: vectorizability analysis and code generation."""

import pytest

from repro.analysis import analyze_kernel
from repro.frontend.parser import parse_kernel
from repro.transform import (
    analyze_vectorizability,
    generate_host_module,
    generate_kernel_module,
)


def _vect(src):
    return analyze_vectorizability(parse_kernel(src))


def test_plain_kernel_vectorizes():
    v = _vect(
        """
__global__ void k(const float *x, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = x[id] * 2.0f;
}
"""
    )
    assert v.vectorizable
    assert "simd" in v.describe()


def test_inner_loop_with_invariant_bounds_vectorizes():
    v = _vect(
        """
__global__ void k(const float *x, float *y, int taps) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    float s = 0.0f;
    for (int i = 0; i < taps; i++) s += x[id + i];
    y[id] = s;
}
"""
    )
    assert v.vectorizable


def test_barrier_at_top_level_vectorizes():
    # loop fission at the barrier handles this (tiled transpose pattern)
    v = _vect(
        """
__global__ void k(const float *x, float *y) {
    __shared__ float t[64];
    t[threadIdx.x] = x[blockIdx.x * blockDim.x + threadIdx.x];
    __syncthreads();
    y[blockIdx.x * blockDim.x + threadIdx.x] = t[63 - threadIdx.x];
}
"""
    )
    assert v.vectorizable


def test_barrier_inside_loop_does_not_vectorize():
    v = _vect(
        """
__global__ void k(float *y, int steps) {
    __shared__ float t[64];
    t[threadIdx.x] = 1.0f;
    for (int s = 0; s < steps; s++) {
        __syncthreads();
        t[threadIdx.x] = t[threadIdx.x] * 0.5f;
    }
    y[threadIdx.x] = t[threadIdx.x];
}
"""
    )
    assert not v.vectorizable
    assert any("fission" in r for r in v.reasons)


@pytest.mark.parametrize(
    "body,reason",
    [
        ("int i = 0; while (i < n) i++;", "while"),
        ("for (int i = 0; i < n; i++) { if (i == 3) break; }", "break"),
        ("for (int i = 0; i < n; i++) { if (i == 3) continue; }", "break"),
        ("atomicAdd(&y[0], 1);", "atomic"),
    ],
)
def test_non_vectorizable_constructs(body, reason):
    v = _vect(f"__global__ void k(int *y, int n) {{ {body} }}")
    assert not v.vectorizable
    assert any(reason in r for r in v.reasons)


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------
LISTING1 = """
__global__ void vec_copy(const char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) dest[id] = src[id];
}
"""


def test_kernel_module_matches_listing2_shape():
    k = parse_kernel(LISTING1)
    text = generate_kernel_module(k, analyze_vectorizability(k))
    assert "#pragma omp simd" in text
    assert "for (int thread_idx_x = 0" in text
    assert "block_idx_x" in text and "threadIdx" not in text
    assert text.startswith("void vec_copy_block(")


def test_kernel_module_scalar_comment_when_not_vectorizable():
    k = parse_kernel(
        "__global__ void k(int *y, int n) { int i = 0; while (i < n) i++; }"
    )
    text = generate_kernel_module(k, analyze_vectorizability(k))
    assert "#pragma omp simd" not in text
    assert "not vectorized" in text


def test_kernel_module_return_becomes_continue():
    k = parse_kernel(
        """
__global__ void k(float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id >= n) return;
    y[id] = 1.0f;
}
"""
    )
    text = generate_kernel_module(k, analyze_vectorizability(k))
    assert "continue; /* thread retires */" in text
    assert "return;" not in text


def test_host_module_has_three_phases():
    k = parse_kernel(LISTING1)
    meta = analyze_kernel(k).metadata
    text = generate_host_module(k, meta)
    assert "phase 1: partial block execution" in text
    assert "phase 2: balanced in-place Allgather" in text
    assert "phase 3: callback block execution" in text
    assert "MPI_Allgather(MPI_IN_PLACE" in text
    assert "int p_size = full_blocks / c_size;" in text
    assert "cucc_resolve_tail_blocks" in text  # tail_divergent path
    assert "MPI_CHAR" in text


def test_host_module_without_tail_divergence():
    k = parse_kernel(
        "__global__ void k(float *out) {"
        " if (threadIdx.x == 0) out[blockIdx.x] = 1.0f; }"
    )
    meta = analyze_kernel(k).metadata
    text = generate_host_module(k, meta)
    assert "int full_blocks = grid_dim_x;" in text
    assert "MPI_FLOAT" in text


def test_host_module_replicated_fallback():
    k = parse_kernel(
        "__global__ void k(uint *bins, const uint *d) {"
        " atomicAdd(&bins[(int)(d[threadIdx.x] % 8u)], 1u); }"
    )
    meta = analyze_kernel(k).metadata
    text = generate_host_module(k, meta)
    assert "replicated execution" in text
    assert "MPI_Allgather" not in text
    assert "atomic" in text  # reason is embedded as a comment

"""Unit tests for the IR type system."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IRTypeError
from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    SCALAR_TYPES,
    U8,
    U32,
    U64,
    AddressSpace,
    PointerType,
    common_type,
    dtype_from_name,
    is_pointer,
)

ALL = list(SCALAR_TYPES.values())


def test_scalar_sizes_match_numpy():
    for t in ALL:
        assert t.size == np.dtype(t.np).itemsize


def test_flags():
    assert F32.is_float and not F32.is_int
    assert I32.is_int and I32.is_signed
    assert U32.is_int and not U32.is_signed
    assert BOOL.is_bool and not BOOL.is_int and not BOOL.is_float


@pytest.mark.parametrize(
    "name,expected",
    [
        ("int", I32),
        ("float", F32),
        ("double", F64),
        ("char", I8),
        ("unsigned int", U32),
        ("unsigned", U32),
        ("long long", I64),
        ("size_t", U64),
        ("uint32_t", U32),
        ("int8_t", I8),
        ("short", I16),
        ("unsigned char", U8),
    ],
)
def test_dtype_from_name(name, expected):
    assert dtype_from_name(name) == expected


def test_dtype_from_name_normalizes_whitespace():
    assert dtype_from_name("  unsigned   int ") == U32


def test_dtype_from_name_unknown():
    with pytest.raises(IRTypeError):
        dtype_from_name("quaternion")


def test_common_type_basics():
    assert common_type(I32, F32) == F32
    assert common_type(F32, F64) == F64
    assert common_type(I8, I32) == I32
    assert common_type(I32, U32) == U32  # unsigned wins at equal rank
    assert common_type(BOOL, BOOL) == I32  # bool promotes to int
    assert common_type(I16, I16) == I16


@given(st.sampled_from(ALL), st.sampled_from(ALL))
def test_common_type_commutative(a, b):
    assert common_type(a, b) == common_type(b, a)


@given(st.sampled_from(ALL))
def test_common_type_idempotent_except_bool(t):
    out = common_type(t, t)
    assert out == (I32 if t.is_bool else t)


@given(st.sampled_from(ALL), st.sampled_from(ALL))
def test_common_type_never_narrows(a, b):
    out = common_type(a, b)
    assert out.size >= min(a.size, b.size)
    if a.is_float or b.is_float:
        assert out.is_float


def test_pointer_type():
    p = PointerType(F32)
    assert p.space is AddressSpace.GLOBAL
    assert is_pointer(p) and not is_pointer(F32)
    shared = PointerType(I32, AddressSpace.SHARED)
    assert "shared" in repr(shared)
    assert repr(p) == "float*"


def test_pointer_equality_includes_space():
    assert PointerType(F32) != PointerType(F32, AddressSpace.SHARED)
    assert PointerType(F32) == PointerType(F32)

"""Workload redistribution (section 8.3 future work): block regridding."""

import numpy as np
import pytest

from repro.analysis import analyze_kernel
from repro.bench.harness import run_on_cucc
from repro.cluster import Cluster
from repro.frontend.parser import parse_kernel
from repro.hw import SIMD_FOCUSED_NODE
from repro.interp import LaunchConfig, run_grid
from repro.transform import (
    GID_PARAM,
    choose_geometry,
    is_regriddable,
    regrid_kernel,
    regrid_workload,
)
from repro.workloads import PERF_WORKLOADS

SCALE = """
__global__ void scale(const float *x, float *y, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) y[gid] = x[gid] * 2.0f;
}
"""


def test_regriddable_detection():
    assert is_regriddable(parse_kernel(SCALE))
    # standalone threadIdx use -> block affinity matters
    assert not is_regriddable(
        parse_kernel("__global__ void k(float *y) { y[threadIdx.x] = 1.0f; }")
    )
    # shared memory -> not regriddable
    assert not is_regriddable(
        parse_kernel(
            """
__global__ void k(float *y) {
    __shared__ float t[32];
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    t[0] = 1.0f;
    y[g] = t[0];
}
"""
        )
    )
    # gridDim use (grid-stride loop) -> not regriddable
    assert not is_regriddable(
        parse_kernel(
            """
__global__ void k(float *y, int n) {
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;
         i += blockDim.x * gridDim.x)
        y[i] = 1.0f;
}
"""
        )
    )


def test_regrid_kernel_structure():
    rg = regrid_kernel(parse_kernel(SCALE))
    assert rg is not None
    assert rg.kernel.name == "scale__regrid"
    assert rg.kernel.params[-1].name == GID_PARAM
    # regridded kernels stay Allgather distributable (guard is tail-shaped)
    a = analyze_kernel(rg.kernel)
    assert a.metadata.distributable and a.metadata.tail_divergent


@pytest.mark.parametrize(
    "grid,block", [(1, 512), (4, 128), (16, 32), (7, 73)]
)
def test_regridded_kernel_equivalent_under_any_geometry(grid, block):
    k = parse_kernel(SCALE)
    rg = regrid_kernel(k)
    n = 500
    logical = 2 * 256  # the original launch was <<<2, 256>>>
    x = np.random.default_rng(0).random(n).astype(np.float32)
    y_ref = np.zeros(n, dtype=np.float32)
    run_grid(k, LaunchConfig.make(2, 256), {"x": x, "y": y_ref, "n": n})
    if grid * block < logical:
        pytest.skip("geometry does not cover the logical range")
    y_new = np.zeros(n, dtype=np.float32)
    run_grid(
        rg.kernel,
        LaunchConfig.make(grid, block),
        {"x": x, "y": y_new, "n": n, GID_PARAM: logical},
    )
    assert np.array_equal(y_ref, y_new)


def test_gid_spelling_variants_are_recognized():
    for expr in (
        "blockIdx.x * blockDim.x + threadIdx.x",
        "blockDim.x * blockIdx.x + threadIdx.x",
        "threadIdx.x + blockIdx.x * blockDim.x",
    ):
        src = f"""
__global__ void k(float *y, int n) {{
    int gid = {expr};
    if (gid < n) y[gid] = 1.0f;
}}
"""
        assert is_regriddable(parse_kernel(src)), expr


def test_choose_geometry_targets_core_count():
    grid, block = choose_geometry(131072, total_cores=768)
    assert grid * block >= 131072
    assert grid >= 768  # enough blocks for every core
    assert 32 <= block <= 1024
    # degenerate small problems still produce a legal geometry
    grid, block = choose_geometry(100, total_cores=768)
    assert grid * block >= 100 and block >= 32
    with pytest.raises(ValueError):
        choose_geometry(0, 10)


@pytest.mark.parametrize("name", ["EP", "FIR", "KMeans", "NBody"])
def test_regrid_workload_preserves_results(name):
    spec = PERF_WORKLOADS[name]("small")
    new = regrid_workload(spec, total_cores=96)
    assert new is not None
    assert new.kernel.name.endswith("__regrid")
    assert GID_PARAM in new.scalars
    # the regridded spec verifies against the *original* reference
    run_on_cucc(new, Cluster(SIMD_FOCUSED_NODE, 4))


def test_regrid_workload_refuses_shared_memory_kernels():
    for name in ("BinomialOption", "GA"):
        spec = PERF_WORKLOADS[name]("small")
        assert regrid_workload(spec, total_cores=96) is None


def test_regrid_improves_block_starved_scaling():
    """The section 8.3 claim: redistribution helps kernels whose block
    count is below the cluster's core count (EP-shaped: heavy per-thread
    loops, far fewer blocks than cores)."""
    from repro.bench.profile import model_cucc_time, profile_workload
    from repro.hw import INFINIBAND_100G
    from repro.workloads.base import WorkloadSpec

    src = """
__global__ void heavy(const float *x, float *y, int rounds, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid >= n) return;
    float v = x[gid];
    for (int r = 0; r < rounds; r++) {
        v = v * 1.000001f + 0.5f;
    }
    y[gid] = v;
}
"""
    rounds, n = 2000, 16 * 256
    x = np.random.default_rng(0).random(n).astype(np.float32)
    v = x.copy()
    for _ in range(rounds):
        v = (v * np.float32(1.000001) + np.float32(0.5)).astype(np.float32)
    spec = WorkloadSpec(
        name="heavy",
        kernel=parse_kernel(src),
        grid=16,  # far fewer blocks than the cluster's 192 cores
        block=256,
        arrays={"x": x, "y": np.zeros(n, dtype=np.float32)},
        scalars={"rounds": rounds, "n": n},
        outputs=("y",),
        reference={"y": v},
    )
    base = profile_workload(spec)
    new_spec = regrid_workload(spec, total_cores=8 * 24)
    assert new_spec is not None
    regr = profile_workload(new_spec)  # also verifies correctness
    # with 2 blocks per node the original leaves 22 of each node's 24
    # cores idle; the regridded version splits the same work 8x finer
    ph_base = model_cucc_time(base, SIMD_FOCUSED_NODE, INFINIBAND_100G, 8)
    ph_regr = model_cucc_time(regr, SIMD_FOCUSED_NODE, INFINIBAND_100G, 8)
    assert ph_regr.partial < 0.25 * ph_base.partial  # compute phase ~8x
    assert ph_regr.total < 0.75 * ph_base.total  # comm/overhead unchanged

"""Baseline runtimes: GPU device, PGAS, single CPU."""

import numpy as np
import pytest

from repro.baselines import GPUDevice, PGASRuntime, SingleCPURuntime
from repro.cluster import Cluster
from repro.errors import LaunchError, DeviceMemoryError
from repro.frontend.parser import parse_kernel
from repro.hw import A100, SIMD_FOCUSED_NODE, V100

SAXPY = """
__global__ void saxpy(const float *x, float *y, float a, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}
"""


def test_gpu_device_end_to_end():
    dev = GPUDevice(A100)
    n = 777
    x = np.random.default_rng(0).random(n).astype(np.float32)
    y0 = np.random.default_rng(1).random(n).astype(np.float32)
    dev.alloc("x", n, np.float32)
    dev.alloc("y", n, np.float32)
    dev.memcpy_h2d("x", x)
    dev.memcpy_h2d("y", y0)
    rec = dev.launch(parse_kernel(SAXPY), 4, 256,
                     {"x": "x", "y": "y", "a": 2.0, "n": n})
    out = dev.memcpy_d2h("y")
    assert np.allclose(out, 2.0 * x + y0, rtol=1e-6)
    assert rec.time > 0 and dev.clock.now == rec.time
    assert rec.counters.flops > 0


def test_gpu_memory_errors():
    dev = GPUDevice(V100)
    dev.alloc("x", 4, np.float32)
    with pytest.raises(DeviceMemoryError):
        dev.alloc("x", 4, np.float32)
    with pytest.raises(DeviceMemoryError):
        dev.memcpy_h2d("x", np.zeros(5, np.float32))
    with pytest.raises(DeviceMemoryError):
        dev.memcpy_d2h("nope")
    dev.free("x")
    with pytest.raises(DeviceMemoryError):
        dev.free("x")


def test_gpu_launch_errors():
    dev = GPUDevice(A100)
    dev.alloc("x", 4, np.float32)
    dev.alloc("y", 4, np.float32)
    k = parse_kernel(SAXPY)
    with pytest.raises(LaunchError, match="missing"):
        dev.launch(k, 1, 4, {"x": "x", "y": "y"})
    with pytest.raises(LaunchError, match="buffer name"):
        dev.launch(k, 1, 4,
                   {"x": np.zeros(4, np.float32), "y": "y", "a": 1.0, "n": 4})


def test_a100_faster_than_v100_on_heavy_kernels():
    from repro.hw import gpu_time
    from repro.interp import OpCounters

    compute = OpCounters(flops=1e10)
    assert gpu_time(A100, compute, 4096, 256) < gpu_time(V100, compute, 4096, 256)
    memory = OpCounters(
        global_load_bytes=1e9, global_line_bytes=1e9, global_store_bytes=1e9
    )
    assert gpu_time(A100, memory, 4096, 256) < gpu_time(V100, memory, 4096, 256)


# ---------------------------------------------------------------------------
# PGAS
# ---------------------------------------------------------------------------
def test_pgas_functional_and_accounting():
    cl = Cluster(SIMD_FOCUSED_NODE, 4)
    rt = PGASRuntime(cl)
    n = 1000
    x = np.random.default_rng(2).random(n).astype(np.float32)
    y0 = np.zeros(n, dtype=np.float32)
    rt.alloc("x", n, np.float32)
    rt.alloc("y", n, np.float32)
    rt.memcpy_h2d("x", x)
    rt.memcpy_h2d("y", y0)
    rec = rt.launch(parse_kernel(SAXPY), 4, 256,
                    {"x": "x", "y": "y", "a": 3.0, "n": n})
    assert np.allclose(rt.memcpy_d2h("y"), 3.0 * x, rtol=1e-6)
    # written buffer is global: y loads + stores counted; x reads are not
    assert rec.local_ops + rec.remote_ops == 2 * n
    # rank 0 owns everything (Listing 3): 3 of 4 nodes' accesses are remote
    assert rec.remote_ops == pytest.approx(2 * n * 3 / 4, abs=2 * 256 * 2)
    assert rec.incast_time > 0
    assert 0 <= rec.comm_fraction <= 1


def test_pgas_single_node_has_no_remote_traffic():
    cl = Cluster(SIMD_FOCUSED_NODE, 1)
    rt = PGASRuntime(cl)
    n = 256
    rt.alloc("x", n, np.float32)
    rt.alloc("y", n, np.float32)
    rt.memcpy_h2d("x", np.ones(n, np.float32))
    rec = rt.launch(parse_kernel(SAXPY), 1, 256,
                    {"x": "x", "y": "y", "a": 1.0, "n": n})
    assert rec.remote_ops == 0 and rec.incast_time == 0


def test_pgas_slower_than_cucc_for_streaming_kernel():
    from repro.bench.harness import run_on_cucc, run_on_pgas
    from repro.workloads import PERF_WORKLOADS

    spec1 = PERF_WORKLOADS["Transpose"]("small")
    spec2 = PERF_WORKLOADS["Transpose"]("small")
    cl1 = Cluster(SIMD_FOCUSED_NODE, 4)
    cl2 = Cluster(SIMD_FOCUSED_NODE, 4)
    t_cucc = run_on_cucc(spec1, cl1).time
    t_pgas = run_on_pgas(spec2, cl2)
    assert t_pgas > t_cucc


# ---------------------------------------------------------------------------
# single CPU
# ---------------------------------------------------------------------------
def test_single_cpu_runtime():
    rt = SingleCPURuntime(SIMD_FOCUSED_NODE)
    assert rt.cluster.num_nodes == 1
    n = 300
    rt.memory.alloc("x", n, np.float32)
    rt.memory.alloc("y", n, np.float32)
    x = np.random.default_rng(3).random(n).astype(np.float32)
    rt.memory.memcpy_h2d("x", x)
    rec = rt.launch(rt.compile(parse_kernel(SAXPY)), 2, 256,
                    {"x": "x", "y": "y", "a": 1.5, "n": n})
    assert rec.plan.replicated  # single node never communicates
    assert rec.comm_bytes == 0
    assert np.allclose(rt.memory.memcpy_d2h("y"), 1.5 * x, rtol=1e-6)

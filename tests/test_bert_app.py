"""The composed BERT encoder-layer application."""

import numpy as np
import pytest

from repro.baselines import GPUDevice
from repro.cluster import Cluster
from repro.hw import A100, SIMD_FOCUSED_NODE, THREAD_FOCUSED_NODE
from repro.runtime import CuCCRuntime
from repro.workloads.bert_app import (
    BertLayer,
    BertWeights,
    GPUAdapter,
    reference_forward,
)

SEQ, HIDDEN, FFN = 48, 32, 96


@pytest.fixture(scope="module")
def setup():
    w = BertWeights.create(HIDDEN, FFN, seed=5)
    tokens = (
        np.random.default_rng(6).standard_normal((SEQ, HIDDEN)).astype(np.float32)
    )
    return w, tokens, reference_forward(tokens, w)


def test_cluster_forward_matches_reference(setup):
    w, tokens, ref = setup
    rt = CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, 4))
    out = BertLayer(rt, SEQ, w).forward(tokens)
    assert np.allclose(out, ref, atol=2e-3)
    assert len(rt.launches) == 14
    assert all(not r.plan.replicated for r in rt.launches)


def test_every_bert_kernel_distributable(setup):
    w, tokens, _ = setup
    rt = CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, 2))
    layer = BertLayer(rt, SEQ, w)
    for compiled in layer.compiled.values():
        assert compiled.distributable, compiled.name


def test_gpu_and_cluster_agree_bitwise(setup):
    w, tokens, _ = setup
    rt = CuCCRuntime(Cluster(THREAD_FOCUSED_NODE, 3))
    out_cluster = BertLayer(rt, SEQ, w).forward(tokens)
    gpu = GPUAdapter(GPUDevice(A100))
    out_gpu = BertLayer(gpu, SEQ, w).forward(tokens)
    assert np.array_equal(out_cluster, out_gpu)


def test_forward_is_repeatable_and_composable(setup):
    """Two forward passes through the same runtime: the replication
    invariant must survive buffer reuse across passes."""
    w, tokens, ref = setup
    rt = CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, 2))
    layer = BertLayer(rt, SEQ, w)
    out1 = layer.forward(tokens)
    out2 = layer.forward(out1)  # feed the output back in (a second layer)
    assert np.allclose(out1, ref, atol=2e-3)
    expected2 = reference_forward(out1, w)
    assert np.allclose(out2, expected2, atol=2e-3)


def test_dimension_validation():
    w = BertWeights.create(512, 64)
    with pytest.raises(ValueError, match="256"):
        BertLayer(CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, 1)), 16, w)
    w2 = BertWeights.create(32, 32)
    layer = BertLayer(CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, 1)), 16, w2)
    with pytest.raises(ValueError, match="tokens"):
        layer.forward(np.zeros((8, 32), dtype=np.float32))

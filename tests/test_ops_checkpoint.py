"""Durable checkpoint format: round-trip, corruption, policy, tools.

The property test is the ISSUE's satellite (c): serializing any
simulator-ish state and reading it back is bit-identical, and *any*
single flipped byte in the file is rejected with a
:class:`~repro.errors.CheckpointError` that names the file — never a
crash deeper in the stack or, worse, silently wrong data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError
from repro.ops import (
    CheckpointPolicy,
    diff_checkpoints,
    latest_checkpoint,
    validate_checkpoint,
)
from repro.ops.checkpoint import (
    LATEST_NAME,
    encode_checkpoint,
    read_checkpoint,
    write_checkpoint,
)

# -- policy validation (satellite a twin for the ops layer) -----------------


def test_policy_defaults_valid(tmp_path):
    p = CheckpointPolicy(directory=str(tmp_path))
    assert p.mode == "phase-boundary"


@pytest.mark.parametrize(
    "kwargs, msg",
    [
        (dict(directory=""), "directory"),
        (dict(directory="d", mode="hourly"), "mode"),
        (dict(directory="d", interval_s=-1.0), "interval_s"),
        (dict(directory="d", mode="interval"), "interval"),
        (dict(directory="d", keep=-1), "keep"),
        (dict(directory="d", halt_after=0), "halt_after"),
    ],
)
def test_policy_validation(kwargs, msg):
    with pytest.raises(ValueError, match=msg):
        CheckpointPolicy(**kwargs)


# -- round-trip property -----------------------------------------------------

_DTYPES = st.sampled_from(["<f4", "<f8", "<i4", "<i8", "|u1"])


@st.composite
def _segments(draw):
    names = draw(
        st.lists(
            st.text(
                alphabet="abcxyz_", min_size=1, max_size=6
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    segs = []
    for name in names:
        dtype = np.dtype(draw(_DTYPES))
        size = draw(st.integers(1, 64))
        ranks = draw(
            st.lists(st.integers(0, 5), min_size=1, max_size=4, unique=True)
        )
        for born in ranks:
            raw = draw(st.binary(min_size=size * dtype.itemsize,
                                 max_size=size * dtype.itemsize))
            segs.append((name, born, np.frombuffer(raw, dtype=dtype)))
    return segs


@st.composite
def _metas(draw):
    return {
        "seq": draw(st.integers(0, 99)),
        "label": draw(st.text(max_size=12)),
        "sim_time": draw(
            st.floats(0, 1e6, allow_nan=False, allow_infinity=False)
        ),
        "nested": {"clock": [draw(st.floats(0, 1, allow_nan=False))]},
    }


@given(meta=_metas(), segs=_segments())
@settings(max_examples=30, deadline=None)
def test_roundtrip_bit_identical(tmp_path_factory, meta, segs):
    path = tmp_path_factory.mktemp("ck") / "a.rckp"
    write_checkpoint(path, meta, segs)
    got_meta, got_data = read_checkpoint(path)
    for k, v in meta.items():
        assert got_meta[k] == v
    assert len(got_data) == len(segs)
    for name, born, arr in segs:
        back = got_data[(name, born)]
        assert back.dtype == arr.dtype
        assert back.tobytes() == arr.tobytes()
        back[...] = 0  # returned arrays must be writable copies


@given(meta=_metas(), segs=_segments(), data=st.data())
@settings(max_examples=30, deadline=None)
def test_any_flipped_byte_is_rejected(tmp_path_factory, meta, segs, data):
    """Satellite (c): corrupting one byte anywhere is caught, and the
    error names the corrupted file."""
    path = tmp_path_factory.mktemp("ck") / "a.rckp"
    write_checkpoint(path, meta, segs)
    payload = bytearray(path.read_bytes())
    pos = data.draw(st.integers(0, len(payload) - 1))
    bit = data.draw(st.integers(0, 7))
    payload[pos] ^= 1 << bit
    path.write_bytes(bytes(payload))
    with pytest.raises(CheckpointError) as ei:
        read_checkpoint(path)
    assert path.name in str(ei.value)


def test_truncation_rejected(tmp_path):
    path = tmp_path / "a.rckp"
    write_checkpoint(path, {"seq": 0}, [("x", 0, np.arange(8, dtype="<i4"))])
    payload = path.read_bytes()
    for cut in (0, 3, 10, len(payload) - 1):
        path.write_bytes(payload[:cut])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)


def test_deterministic_encoding():
    """Identical state -> byte-identical file (the diff primitive)."""
    meta = {"b": 1, "a": {"y": 2, "x": 3}}
    segs = [("v", 1, np.arange(4, dtype="<f4")),
            ("v", 0, np.arange(4, dtype="<f4"))]
    assert encode_checkpoint(meta, segs) == encode_checkpoint(
        dict(reversed(meta.items())), list(reversed(segs))
    )


# -- tools -------------------------------------------------------------------


def test_latest_checkpoint_alias_and_fallback(tmp_path):
    assert latest_checkpoint(tmp_path) is None
    a = write_checkpoint(tmp_path / "ckpt-000001.rckp", {"seq": 1}, [])
    assert latest_checkpoint(tmp_path).name == LATEST_NAME
    (tmp_path / LATEST_NAME).unlink()
    assert latest_checkpoint(tmp_path) == a


def test_validate_reports_problems(tmp_path):
    path = write_checkpoint(tmp_path / "a.rckp", {"seq": 0},
                            [("x", 0, np.zeros(4, dtype="<f4"))])
    assert validate_checkpoint(path) == []
    payload = bytearray(path.read_bytes())
    payload[-1] ^= 0xFF
    path.write_bytes(bytes(payload))
    problems = validate_checkpoint(path)
    assert problems and "a.rckp" in problems[0]


def test_diff_ignores_volatile_keys(tmp_path):
    segs = [("x", 0, np.arange(4, dtype="<i4"))]
    a = write_checkpoint(tmp_path / "a.rckp",
                         {"seq": 1, "label": "first", "t": 2.5}, segs)
    b = write_checkpoint(tmp_path / "b.rckp",
                         {"seq": 9, "label": "other", "t": 2.5}, segs)
    assert diff_checkpoints(a, b) == []


def test_diff_reports_meta_and_data_differences(tmp_path):
    a = write_checkpoint(tmp_path / "a.rckp", {"seq": 1, "t": 2.5},
                         [("x", 0, np.arange(4, dtype="<i4"))])
    b = write_checkpoint(tmp_path / "b.rckp", {"seq": 1, "t": 3.5},
                         [("x", 0, np.array([0, 1, 9, 3], dtype="<i4"))])
    diffs = diff_checkpoints(a, b)
    assert any("t" in d for d in diffs)
    assert any("x" in d for d in diffs)

"""Launch-trace reporting and multi-dimensional block execution."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.frontend.parser import parse_kernel
from repro.hw import SIMD_FOCUSED_NODE
from repro.interp import LaunchConfig, run_grid
from repro.runtime import CuCCRuntime, summarize_launches


# ---------------------------------------------------------------------------
# trace reporting
# ---------------------------------------------------------------------------
def test_trace_report_aggregates_per_kernel():
    src = """
__global__ void scale(const float *x, float *y, int n, float f) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) y[id] = x[id] * f;
}
"""
    rt = CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, 2))
    compiled = rt.compile(parse_kernel(src))
    n = 512
    for name in ("a", "b"):
        rt.memory.alloc(name, n, np.float32)
    rt.memory.memcpy_h2d("a", np.ones(n, np.float32))
    for i in range(3):
        rt.launch(compiled, 2, 256, {"x": "a", "y": "b", "n": n, "f": 2.0})
    stats = summarize_launches(rt.launches)
    assert len(stats) == 1
    s = stats[0]
    assert s.kernel == "scale" and s.launches == 3 and s.distributed == 3
    assert s.total_s > 0 and s.comm_bytes == 3 * n * 4
    assert 0 <= s.network_fraction <= 1
    report = rt.report()
    assert "scale" in report and "Allgather" in report


def test_trace_report_empty():
    rt = CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, 1))
    assert "0.0 us" in rt.report()


# ---------------------------------------------------------------------------
# 2-D / 3-D blocks
# ---------------------------------------------------------------------------
def test_2d_block_tile_kernel():
    """threadIdx.x/.y both drive the computation; the analysis accepts
    multi-axis thread indices (condition 1 covers each axis)."""
    src = """
__global__ void tile(const float *src, float *dst, int width) {
    int x = threadIdx.x;
    int y = threadIdx.y;
    int base = blockIdx.x * blockDim.x * blockDim.y;
    dst[base + y * blockDim.x + x] = src[base + y * blockDim.x + x] * 2.0f;
}
"""
    k = parse_kernel(src)
    from repro.analysis import analyze_kernel, finalize_plan

    a = analyze_kernel(k)
    assert a.metadata.distributable
    blocks, bx, by = 6, 8, 4
    n = blocks * bx * by
    srca = np.random.default_rng(0).random(n).astype(np.float32)
    dsta = np.zeros(n, dtype=np.float32)
    run_grid(k, LaunchConfig.make(blocks, (bx, by)),
             {"src": srca, "dst": dsta, "width": bx})
    assert np.array_equal(dsta, srca * np.float32(2.0))
    plan = finalize_plan(a, LaunchConfig.make(blocks, (bx, by)), {"width": bx}, 2)
    assert not plan.replicated
    assert plan.buffers[0].unit_elems == bx * by


def test_2d_block_cluster_execution():
    src = """
__global__ void tile(const float *src, float *dst, int width) {
    int x = threadIdx.x;
    int y = threadIdx.y;
    int base = blockIdx.x * blockDim.x * blockDim.y;
    dst[base + y * blockDim.x + x] = src[base + y * blockDim.x + x] + 1.0f;
}
"""
    rt = CuCCRuntime(Cluster(SIMD_FOCUSED_NODE, 3))
    compiled = rt.compile(parse_kernel(src))
    blocks, bx, by = 9, 16, 4
    n = blocks * bx * by
    host = np.random.default_rng(1).random(n).astype(np.float32)
    rt.memory.alloc("src", n, np.float32)
    rt.memory.alloc("dst", n, np.float32)
    rt.memory.memcpy_h2d("src", host)
    rec = rt.launch(compiled, blocks, (bx, by),
                    {"src": "src", "dst": "dst", "width": bx})
    assert not rec.plan.replicated
    out = rt.memory.memcpy_d2h("dst", check_consistency=True)
    assert np.array_equal(out, host + np.float32(1.0))


def test_3d_threads_functional():
    src = """
__global__ void vol(float *dst) {
    int idx = (threadIdx.z * blockDim.y + threadIdx.y) * blockDim.x
              + threadIdx.x;
    dst[blockIdx.x * blockDim.x * blockDim.y * blockDim.z + idx]
        = (float)(threadIdx.x + 10 * threadIdx.y + 100 * threadIdx.z);
}
"""
    k = parse_kernel(src)
    bx, by, bz = 4, 3, 2
    dst = np.zeros(2 * bx * by * bz, dtype=np.float32)
    run_grid(k, LaunchConfig.make(2, (bx, by, bz)), {"dst": dst})
    ref = np.array(
        [x + 10 * y + 100 * z
         for z in range(bz) for y in range(by) for x in range(bx)],
        dtype=np.float32,
    )
    assert np.array_equal(dst[: bx * by * bz], ref)
    assert np.array_equal(dst[bx * by * bz :], ref)

"""Interpreter memory system: bounds, shared memory, atomics, spans,
counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpError
from repro.frontend.parser import parse_kernel
from repro.interp import BlockExecutor, LaunchConfig, OpCounters, run_grid
from repro.interp.machine import span_eligible


# ---------------------------------------------------------------------------
# bounds checking
# ---------------------------------------------------------------------------
def test_out_of_bounds_store_reports_context():
    k = parse_kernel(
        "__global__ void k(float *y) { y[threadIdx.x + 100] = 1.0f; }"
    )
    with pytest.raises(InterpError, match="out-of-bounds store"):
        run_grid(k, LaunchConfig.make(1, 8), {"y": np.zeros(4, np.float32)})


def test_out_of_bounds_load_detected():
    k = parse_kernel(
        "__global__ void k(float *y, const float *x) { y[0] = x[999]; }"
    )
    with pytest.raises(InterpError, match="out-of-bounds load"):
        run_grid(
            k,
            LaunchConfig.make(1, 1),
            {"y": np.zeros(4, np.float32), "x": np.zeros(4, np.float32)},
        )


def test_negative_index_detected():
    k = parse_kernel(
        "__global__ void k(float *y) { y[threadIdx.x - 5] = 1.0f; }"
    )
    with pytest.raises(InterpError, match="out-of-bounds"):
        run_grid(k, LaunchConfig.make(1, 4), {"y": np.zeros(8, np.float32)})


def test_masked_oob_is_fine():
    # lanes whose guard is false may compute wild indices
    src = """
__global__ void k(float *y, const float *x, int n) {
    int t = threadIdx.x;
    if (t < n) y[t] = x[t * 1000000];
}
"""
    x = np.ones(1, dtype=np.float32)
    y = np.zeros(8, dtype=np.float32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8),
             {"y": y, "x": x, "n": 1})
    assert y[0] == 1.0 and np.all(y[1:] == 0)


def test_bounds_check_disabled_clamps():
    k = parse_kernel(
        "__global__ void k(float *y) { y[threadIdx.x + 100] = 1.0f; }"
    )
    # with checking off, out-of-range lanes clamp to index 0 (documented)
    run_grid(k, LaunchConfig.make(1, 4), {"y": np.zeros(4, np.float32)},
             bounds_check=False)


# ---------------------------------------------------------------------------
# shared memory
# ---------------------------------------------------------------------------
REVERSE_SRC = """
__global__ void rev(const float *x, float *y, int n) {
    __shared__ float tile[64];
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (g < n) tile[threadIdx.x] = x[g];
    __syncthreads();
    int src = blockDim.x - 1 - threadIdx.x;
    if (g < n) y[g] = tile[src];
}
"""


def test_shared_memory_block_reverse():
    n = 256
    x = np.arange(n, dtype=np.float32)
    y = np.zeros(n, dtype=np.float32)
    run_grid(parse_kernel(REVERSE_SRC), LaunchConfig.make(4, 64),
             {"x": x, "y": y, "n": n})
    ref = x.reshape(4, 64)[:, ::-1].reshape(-1)
    assert np.array_equal(y, ref)


def test_shared_memory_isolated_between_blocks():
    # block 1 must not see block 0's shared writes: with zero-init shared,
    # reading an unwritten slot yields 0, not a stale value
    src = """
__global__ void k(float *y) {
    __shared__ float s[4];
    if (blockIdx.x == 0) s[threadIdx.x] = 7.0f;
    __syncthreads();
    y[blockIdx.x * blockDim.x + threadIdx.x] = s[threadIdx.x];
}
"""
    y = np.zeros(8, dtype=np.float32)
    ex = BlockExecutor(parse_kernel(src), LaunchConfig.make(2, 4), {"y": y})
    ex.run_block(0)
    ex.run_block(1)
    assert list(y) == [7, 7, 7, 7, 0, 0, 0, 0]


def test_shared_memory_span_segmentation():
    # same kernel, multi-block span: per-block segments stay isolated
    src = """
__global__ void k(float *y) {
    __shared__ float s[4];
    s[threadIdx.x] = (float)blockIdx.x;
    __syncthreads();
    y[blockIdx.x * blockDim.x + threadIdx.x] = s[3 - threadIdx.x];
}
"""
    y1 = np.zeros(32, dtype=np.float32)
    y2 = np.zeros(32, dtype=np.float32)
    run_grid(parse_kernel(src), LaunchConfig.make(8, 4), {"y": y1}, span=1)
    run_grid(parse_kernel(src), LaunchConfig.make(8, 4), {"y": y2}, span=8)
    assert np.array_equal(y1, y2)
    assert np.array_equal(y1, np.repeat(np.arange(8, dtype=np.float32), 4))


def test_shared_oob_detected_even_in_span():
    src = """
__global__ void k(float *y) {
    __shared__ float s[4];
    s[threadIdx.x] = 0.0f;
    y[threadIdx.x] = s[threadIdx.x];
}
"""
    with pytest.raises(InterpError, match="shared"):
        run_grid(parse_kernel(src), LaunchConfig.make(4, 8),
                 {"y": np.zeros(32, np.float32)}, span=4)


# ---------------------------------------------------------------------------
# atomics
# ---------------------------------------------------------------------------
def test_atomic_add_with_duplicates():
    src = """
__global__ void k(const int *d, int *bins, int n) {
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (g < n) atomicAdd(&bins[d[g]], 1);
}
"""
    rng = np.random.default_rng(3)
    d = rng.integers(0, 8, 500).astype(np.int32)
    bins = np.zeros(8, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(2, 256),
             {"d": d, "bins": bins, "n": 500})
    assert np.array_equal(bins, np.bincount(d, minlength=8))


def test_atomic_min_max():
    src = """
__global__ void k(const int *d, int *mn, int *mx, int n) {
    int g = threadIdx.x;
    if (g < n) {
        atomicMin(&mn[0], d[g]);
        atomicMax(&mx[0], d[g]);
    }
}
"""
    d = np.array([5, -3, 9, 0], dtype=np.int32)
    mn = np.array([100], dtype=np.int32)
    mx = np.array([-100], dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8),
             {"d": d, "mn": mn, "mx": mx, "n": 4})
    assert mn[0] == -3 and mx[0] == 9


def test_atomic_cas():
    src = """
__global__ void k(int *lock) {
    atomicCAS(&lock[threadIdx.x], 0, 42);
    atomicCAS(&lock[threadIdx.x], 1, 99);
}
"""
    lock = np.array([0, 1, 2, 0], dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 4), {"lock": lock})
    assert list(lock) == [42, 99, 2, 42]


def test_atomic_result_value():
    src = """
__global__ void k(int *ctr, int *out) {
    int old = 0;
    old = atomicAdd(&ctr[threadIdx.x], 5);
    out[threadIdx.x] = old;
}
"""
    ctr = np.arange(4, dtype=np.int32)
    out = np.zeros(4, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 4),
             {"ctr": ctr, "out": out})
    assert list(out) == [0, 1, 2, 3]
    assert list(ctr) == [5, 6, 7, 8]


# ---------------------------------------------------------------------------
# span equivalence (property)
# ---------------------------------------------------------------------------
SPAN_SRC = """
__global__ void k(const float *x, float *y, int n) {
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (g >= n) return;
    float acc = 0.0f;
    for (int i = 0; i < g % 7 + 1; i++) acc += x[(g + i) % n];
    y[g] = acc * (float)(blockIdx.x + 1);
}
"""


@settings(max_examples=12, deadline=None)
@given(
    blocks=st.integers(1, 9),
    tpb=st.sampled_from([1, 3, 8, 32]),
    span=st.integers(1, 10),
)
def test_span_equivalence(blocks, tpb, span):
    n = blocks * tpb - min(2, blocks * tpb - 1)
    x = np.random.default_rng(blocks * 100 + tpb).random(max(n, 1)).astype(np.float32)
    k = parse_kernel(SPAN_SRC)
    y_ref = np.zeros(max(n, 1), dtype=np.float32)
    y_span = np.zeros(max(n, 1), dtype=np.float32)
    run_grid(k, LaunchConfig.make(blocks, tpb),
             {"x": x, "y": y_ref, "n": n}, span=1)
    run_grid(k, LaunchConfig.make(blocks, tpb),
             {"x": x, "y": y_span, "n": n}, span=span)
    assert np.array_equal(y_ref, y_span)


def test_span_eligible_is_true_even_with_shared():
    assert span_eligible(parse_kernel(REVERSE_SRC))


# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------
def test_counters_flops_and_bytes():
    src = """
__global__ void k(const float *x, float *y, int n) {
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (g < n) y[g] = x[g] * 2.0f + 1.0f;
}
"""
    n = 100
    c = OpCounters()
    run_grid(parse_kernel(src), LaunchConfig.make(1, 128),
             {"x": np.zeros(n, np.float32), "y": np.zeros(n, np.float32),
              "n": n}, counters=c)
    assert c.flops == 2 * n  # one mul + one add per active lane
    assert c.global_load_bytes == 4 * n
    assert c.global_store_bytes == 4 * n
    assert c.global_loads == n and c.global_stores == n


def test_counters_active_lanes_only():
    src = """
__global__ void k(float *y, int n) {
    int g = threadIdx.x;
    if (g < n) y[g] = 1.0f + 2.0f;
}
"""
    c = OpCounters()
    run_grid(parse_kernel(src), LaunchConfig.make(1, 256),
             {"y": np.zeros(10, np.float32), "n": 10}, counters=c)
    assert c.flops == 10  # only 10 active lanes execute the add


def test_counters_barriers_per_block():
    c = OpCounters()
    n = 256
    run_grid(parse_kernel(REVERSE_SRC), LaunchConfig.make(4, 64),
             {"x": np.zeros(n, np.float32), "y": np.zeros(n, np.float32),
              "n": n}, counters=c, span=4)
    assert c.barriers == 4  # one barrier statement x 4 blocks


def test_counters_scaled_and_add():
    a = OpCounters(flops=10, global_load_bytes=40)
    b = a.scaled(2.5)
    assert b.flops == 25 and b.global_load_bytes == 100
    b.add(a)
    assert b.flops == 35
    assert a.weighted_flops == 10
    assert OpCounters(div_ops=1).weighted_flops > 1  # divisions weighted


def test_line_bytes_contiguous_vs_strided():
    contiguous = parse_kernel(
        "__global__ void k(float *y) {"
        " y[blockIdx.x * blockDim.x + threadIdx.x] = 1.0f; }"
    )
    strided = parse_kernel(
        "__global__ void k(float *y) {"
        " y[(blockIdx.x * blockDim.x + threadIdx.x) * 64] = 1.0f; }"
    )
    c1, c2 = OpCounters(), OpCounters()
    run_grid(contiguous, LaunchConfig.make(4, 256),
             {"y": np.zeros(1024, np.float32)}, counters=c1)
    run_grid(strided, LaunchConfig.make(4, 256),
             {"y": np.zeros(1024 * 64, np.float32)}, counters=c2)
    assert c1.global_store_bytes == c2.global_store_bytes
    # strided stores touch ~16x more cache lines than contiguous ones
    assert c2.global_line_bytes > 10 * c1.global_line_bytes

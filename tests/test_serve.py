"""The serving subsystem: queue, packing, pipelining, and the contract.

The headline property (ISSUE acceptance): serving N jobs concurrently —
pipelined or not, with or without injected faults — produces per-job
results bit-identical to running the same jobs serially in submission
order.  Everything else here supports that: the submission queue's
fairness order, the packer's disjoint leases, the overlap-timing math,
the shared-cache behaviour, and the per-job observability labels.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from trace_schema import validate_chrome_trace

from repro.errors import ServeError
from repro.serve import (
    AdmissionPacker,
    CuCCServer,
    JobRequest,
    PhaseProfile,
    ServeConfig,
    SubmissionQueue,
    parse_mix,
    percentile,
    resolve_workload,
    serve_requests,
    serve_serially,
    synth_requests,
    verify_against_serial,
)
from repro.serve.pipeline import schedule_fresh, schedule_overlapped

CRASH = "crash:rank=1,phase=allgather"


# -- queue and arrival synthesis ----------------------------------------


def test_parse_mix_weights_and_bare_names():
    assert parse_mix("FIR:2,KMeans:1") == {"FIR": 2.0, "KMeans": 1.0}
    assert parse_mix("FIR,KMeans") == {"FIR": 1.0, "KMeans": 1.0}
    # case-insensitive, canonicalized, repeated names accumulate
    assert parse_mix("fir:1,FIR:2") == {"FIR": 3.0}


@pytest.mark.parametrize("bad", ["", "NoSuchKernel:1", "FIR:x", "FIR:-1"])
def test_parse_mix_rejects(bad):
    with pytest.raises(ServeError):
        parse_mix(bad)


def test_resolve_workload_case_insensitive():
    name, build = resolve_workload("kmeans")
    assert name == "KMeans" and callable(build)
    with pytest.raises(ServeError, match="unknown workload"):
        resolve_workload("warp_shuffle_9000")


def test_request_validation():
    with pytest.raises(ServeError):
        JobRequest("j", "FIR", nodes=0)
    with pytest.raises(ServeError):
        JobRequest("j", "FIR", arrival_s=-1.0)
    with pytest.raises(ServeError):
        JobRequest("j", "FIR", size="huge")


def test_queue_orders_by_arrival_then_submission():
    q = SubmissionQueue()
    q.submit(workload="FIR", arrival_s=2.0)
    q.submit(workload="KMeans", arrival_s=1.0)
    q.submit(workload="EP", arrival_s=1.0)  # same arrival: FIFO
    ids = [r.job_id for r in q.requests()]
    assert ids == ["job-0001", "job-0002", "job-0000"]
    assert len(q) == 3
    with pytest.raises(ServeError, match="duplicate"):
        q.submit(JobRequest("job-0000", "FIR"))


def test_synth_requests_deterministic_per_seed():
    a = synth_requests("FIR:2,KMeans:1", rate=1e6, jobs=16, seed=3)
    b = synth_requests("FIR:2,KMeans:1", rate=1e6, jobs=16, seed=3)
    c = synth_requests("FIR:2,KMeans:1", rate=1e6, jobs=16, seed=4)
    assert a == b
    assert a != c
    assert [r.arrival_s for r in a] == sorted(r.arrival_s for r in a)
    assert len({r.workload for r in a}) > 1  # the mix actually mixes


def test_synth_requests_fault_every_marks_every_kth_job():
    reqs = synth_requests("FIR", rate=1e6, jobs=9, seed=0,
                          faults=CRASH, fault_every=3)
    faulted = [r.faults is not None for r in reqs]
    assert faulted == [False, False, True] * 3


def test_synth_requests_duration_bounds_the_trace():
    reqs = synth_requests("FIR", rate=1e6, duration_s=1e-5, seed=0)
    assert reqs and all(r.arrival_s <= 1e-5 for r in reqs)
    with pytest.raises(ServeError):
        synth_requests("FIR", rate=1e6)  # neither jobs nor duration


# -- pipelining math ----------------------------------------------------


def test_schedule_fresh_phases_abut():
    p = PhaseProfile(pre_s=3.0, allgather_s=2.0, post_s=1.0)
    t = schedule_fresh(p, 10.0)
    assert (t.start_s, t.allgather_start_s, t.allgather_end_s,
            t.finish_s) == (10.0, 13.0, 15.0, 16.0)
    assert not t.overlapped and t.window_s == 2.0


def test_schedule_overlapped_full_fit_hides_pre_entirely():
    owner = schedule_fresh(PhaseProfile(1.0, 5.0, 1.0), 0.0)
    succ = schedule_overlapped(PhaseProfile(2.0, 3.0, 1.0), owner)
    # pre (2) fits inside the window (5): starts at window-open, its own
    # allgather still waits for the owner's to leave the wire (rule 3)
    assert succ.start_s == owner.allgather_start_s == 1.0
    assert succ.allgather_start_s == owner.allgather_end_s == 6.0
    # post needs the CPUs back: owner finishes at 7
    assert succ.finish_s == max(9.0, owner.finish_s) + 1.0


def test_schedule_overlapped_partial_fit_suspends_and_resumes():
    owner = schedule_fresh(PhaseProfile(1.0, 2.0, 4.0), 0.0)  # window 2
    succ = schedule_overlapped(PhaseProfile(5.0, 1.0, 1.0), owner)
    # 2 of 5 pre-seconds hide in the window; the remaining 3 resume
    # after the owner's callback ends (t=7), so pre ends at 10
    assert succ.start_s == 1.0
    assert succ.allgather_start_s == 10.0
    assert succ.finish_s == 12.0
    # never better than fresh-at-owner-finish would be, but never
    # worse either: the hidden seconds are pure gain
    fresh = schedule_fresh(PhaseProfile(5.0, 1.0, 1.0), owner.finish_s)
    assert succ.finish_s <= fresh.finish_s


def test_overlap_is_never_slower_than_waiting():
    owner = schedule_fresh(PhaseProfile(2.0, 3.0, 2.0), 0.0)
    for pre in (0.5, 3.0, 9.0):
        prof = PhaseProfile(pre, 1.5, 0.5)
        ov = schedule_overlapped(prof, owner)
        assert ov.finish_s <= schedule_fresh(prof, owner.finish_s).finish_s
        assert ov.allgather_start_s >= owner.allgather_end_s  # one wire


# -- admission and packing ----------------------------------------------


def _timing():
    return schedule_fresh(PhaseProfile(1.0, 1.0, 1.0), 0.0)


def test_packer_leases_are_disjoint_and_bounded():
    p = AdmissionPacker(6)
    a = p.admit("a", 2, _timing())
    b = p.admit("b", 3, _timing())
    assert set(a.node_ids).isdisjoint(b.node_ids)
    assert p.free_nodes == 1
    assert not p.can_admit(2)
    with pytest.raises(Exception):
        p.admit("c", 2, _timing())
    assert p.job_finished(a, "a") == a.node_ids
    assert p.free_nodes == 3


def test_packer_attach_depth_one_and_handoff_shrink():
    p = AdmissionPacker(4)
    lease = p.admit("owner", 4, _timing())
    p.attach(lease, "succ", _timing())
    with pytest.raises(ServeError, match="already has successor"):
        p.attach(lease, "third", _timing())
    # owner finishes: successor takes over, nothing released yet
    assert p.job_finished(lease, "owner") == ()
    assert lease.owner == "succ" and lease.successor is None
    # the successor was narrower: shed the excess width
    assert p.shrink(lease, 2) == (2, 3)
    assert p.free_nodes == 2
    assert p.job_finished(lease, "succ") == (0, 1)
    assert p.free_nodes == 4 and not p.leases


def test_percentile_nearest_rank():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile(vals, 50) == 2.0
    assert percentile(vals, 99) == 4.0
    assert percentile([7.0], 50) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)


# -- the determinism contract -------------------------------------------


def _mixed_requests(jobs=6, **kw):
    kw.setdefault("nodes", 2)
    return synth_requests("FIR:2,KMeans:1,Transpose:1", rate=2e6,
                          jobs=jobs, seed=0, **kw)


def test_concurrent_serving_bit_identical_to_serial():
    reqs = _mixed_requests()
    serial = serve_serially(reqs, ServeConfig(nodes=6))
    for pipeline in (False, True):
        rep = serve_requests(reqs, ServeConfig(nodes=6, pipeline=pipeline))
        assert verify_against_serial(rep, serial) == []
        # placement invariants: concurrent residents own disjoint subsets
        assert all(r.status == "ok" for r in rep.results)


def test_identity_holds_under_injected_faults():
    reqs = _mixed_requests(jobs=8, faults=CRASH, fault_every=3)
    serial = serve_serially(reqs, ServeConfig(nodes=6))
    rep = serve_requests(reqs, ServeConfig(nodes=6))
    assert verify_against_serial(rep, serial) == []
    faulted = [r for r in rep.results if r.request.faults]
    assert faulted and all(r.status == "ok" for r in faulted)
    assert all(r.record.recoveries > 0 for r in faulted)
    clean = [r for r in rep.results if not r.request.faults]
    assert all(r.record.recoveries == 0 for r in clean)  # isolation


def test_terminal_failure_is_isolated_and_identical_to_serial():
    reqs = [
        JobRequest("ok-0", "FIR", nodes=2, arrival_s=0.0),
        # 1-node job loses its only replica: unrecoverable, stays failed
        JobRequest("doomed", "FIR", nodes=1, arrival_s=0.0,
                   faults="crash:rank=0,phase=partial"),
        JobRequest("ok-1", "KMeans", nodes=2, arrival_s=0.0),
    ]
    serial = serve_serially(reqs, ServeConfig(nodes=5))
    rep = serve_requests(reqs, ServeConfig(nodes=5))
    assert verify_against_serial(rep, serial) == []
    by_id = {r.request.job_id: r for r in rep.results}
    assert by_id["doomed"].status == "failed"
    assert "unrecoverable" in by_id["doomed"].error
    assert by_id["ok-0"].status == by_id["ok-1"].status == "ok"
    assert rep.stats.failed == 1 and rep.stats.completed == 2


def test_fcfs_admission_head_never_overtaken():
    # a wide head that does not fit must hold back later narrow jobs
    # from *leases* (pipelined attach is the only sanctioned backfill)
    reqs = [
        JobRequest("wide", "FIR", nodes=4, arrival_s=1e-7),
        JobRequest("narrow", "KMeans", nodes=1, arrival_s=2e-7),
    ]
    blocker = JobRequest("blocker", "FIR", nodes=3, arrival_s=0.0)
    rep = serve_requests([blocker] + reqs,
                         ServeConfig(nodes=4, pipeline=False))
    by_id = {r.request.job_id: r for r in rep.results}
    # narrow could have run beside the blocker, but FCFS makes it wait
    # for wide's lease to be granted first
    assert by_id["wide"].timing.admit_s >= by_id["blocker"].timing.finish_s
    assert by_id["narrow"].timing.admit_s >= by_id["wide"].timing.admit_s


def test_pipelined_beats_concurrent_beats_serial_under_backlog():
    reqs = _mixed_requests(jobs=12)
    serial = serve_serially(reqs, ServeConfig(nodes=8))
    conc = serve_requests(reqs, ServeConfig(nodes=8, pipeline=False))
    pipe = serve_requests(reqs, ServeConfig(nodes=8, pipeline=True))
    ss, cs, ps = serial.stats, conc.stats, pipe.stats
    assert cs.launches_per_sec > ss.launches_per_sec
    assert ps.launches_per_sec > cs.launches_per_sec
    assert ps.latency_p99_s <= cs.latency_p99_s <= ss.latency_p99_s
    assert ps.overlapped > 0
    # identity still holds in every mode (same jobs, same bits)
    assert verify_against_serial(pipe, serial) == []


def test_server_rejects_bad_submissions():
    with pytest.raises(ServeError, match="pool has 2"):
        serve_requests([JobRequest("big", "FIR", nodes=4)],
                       ServeConfig(nodes=2))
    with pytest.raises(ServeError, match="duplicate"):
        serve_requests([JobRequest("x", "FIR"), JobRequest("x", "FIR")],
                       ServeConfig(nodes=4))
    with pytest.raises(ServeError, match="empty"):
        serve_requests([], ServeConfig(nodes=4))
    with pytest.raises(ServeError, match="unknown cluster"):
        CuCCServer(ServeConfig(cluster="abacus"))


# -- shared caches ------------------------------------------------------


def test_warm_shared_compile_cache_serves_with_zero_recompiles(tmp_path):
    from repro.interp.jit import CompileCache
    from repro.interp.jit.executor import clear_memo, compile_stats

    reqs = _mixed_requests(jobs=4)
    path = tmp_path / "serve-cache.json"
    cold = CuCCServer(ServeConfig(nodes=4, backend="jit",
                                  jit_cache=CompileCache(path=path)))
    clear_memo()
    cold.run(reqs)
    assert len(cold.jit_cache) > 0
    cold.jit_cache.save()

    clear_memo()  # hits must come from the *persisted* cache
    before = compile_stats["compiles"]
    warm = CuCCServer(ServeConfig(nodes=4, backend="jit", jit_cache=path))
    rep = warm.run(reqs)
    assert compile_stats["compiles"] == before
    assert warm.jit_cache.hits > 0
    assert all(r.status == "ok" for r in rep.results)


def test_shared_tuning_cache_is_consulted_not_written(tmp_path):
    from repro.tuning import TuningCache

    cache = TuningCache()
    before = dict(cache.entries)
    serve_requests(_mixed_requests(jobs=3),
                   ServeConfig(nodes=4, tuning=cache))
    assert cache.entries == before  # select_algorithm never writes


# -- per-job observability ----------------------------------------------


def test_job_spans_and_adopted_spans_carry_job_id(tmp_path):
    from repro.obs.export import write_chrome_trace

    reqs = _mixed_requests(jobs=3)
    server = CuCCServer(ServeConfig(nodes=4, trace=True))
    rep = server.run(reqs)
    spans = server.tracer.spans
    job_spans = [s for s in spans if s.kind == "serve"]
    assert len(job_spans) == 3
    assert {s.args["job_id"] for s in job_spans} == \
        {r.job_id for r in reqs}
    for s in job_spans:
        assert s.args["status"] == "ok"
        assert len(s.args["node_ids"]) == s.args["nodes"]
    # every adopted child span is labelled and remapped onto pool nodes
    children = [s for s in spans if s.kind != "serve"]
    assert children and all("job_id" in s.args for s in children)
    pool_ids = {i for r in rep.results for i in r.node_ids}
    assert {s.rank for s in children if s.rank is not None} <= pool_ids
    path = tmp_path / "serve-trace.json"
    write_chrome_trace(server.tracer, path)
    assert validate_chrome_trace(json.loads(path.read_text())) == []


def test_metrics_labelled_per_job_and_workload():
    from repro.obs.metrics import METRICS

    METRICS.reset()
    serve_requests(_mixed_requests(jobs=3), ServeConfig(nodes=4))
    snap = METRICS.render()
    assert "serve.launches{job=job-0000" in snap
    assert "serve.latency_s{workload=" in snap
    METRICS.reset()


# -- the property, under hypothesis -------------------------------------


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    jobs=st.integers(2, 5),
    pool=st.integers(2, 6),
    pipeline=st.booleans(),
    fault_every=st.sampled_from([0, 2]),
)
def test_property_concurrent_equals_serial(seed, jobs, pool, pipeline,
                                           fault_every):
    reqs = synth_requests(
        "FIR:1,KMeans:1", rate=2e6, jobs=jobs, nodes=2, seed=seed,
        faults=CRASH if fault_every else None, fault_every=fault_every,
    )
    serial = serve_serially(reqs, ServeConfig(nodes=pool))
    rep = serve_requests(reqs, ServeConfig(nodes=pool, pipeline=pipeline))
    assert verify_against_serial(rep, serial) == []

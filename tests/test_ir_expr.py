"""Unit tests for IR expression nodes and their typing rules."""

import pytest

from repro.errors import IRTypeError
from repro.ir.expr import (
    BinOp,
    Call,
    Cast,
    Const,
    Load,
    Param,
    Select,
    SReg,
    SRegKind,
    UnOp,
    Var,
    const,
)
from repro.ir.types import BOOL, F32, F64, I8, I32, I64, PointerType


def test_const_inference():
    assert const(3).dtype == I32
    assert const(True).dtype == BOOL
    assert const(1.5).dtype == F32
    assert const(2**40).dtype == I64


def test_const_coercion():
    c = Const(3, F32)
    assert isinstance(c.value, float)
    c2 = Const(True, I32)
    assert c2.value == 1 and not isinstance(c2.value, bool)


def test_sreg():
    assert SReg(SRegKind.TID_X).dtype == I32
    assert SRegKind.TID_Y.is_thread_index
    assert SRegKind.CTAID_Z.is_block_index
    assert not SRegKind.NTID_X.is_thread_index


def test_binop_typing():
    a = Var("a", I32)
    b = Var("b", F32)
    assert BinOp("+", a, b).dtype == F32
    assert BinOp("<", a, b).dtype == BOOL
    assert BinOp("&&", a, b).dtype == BOOL
    assert BinOp("<<", a, const(2)).dtype == I32


def test_binop_rejects_bad_ops():
    a = Var("a", F32)
    with pytest.raises(IRTypeError):
        BinOp("**", a, a)
    with pytest.raises(IRTypeError):
        BinOp("&", a, a)  # bitwise on float
    with pytest.raises(IRTypeError):
        BinOp("%", a, a)  # float modulo must use fmod


def test_unop():
    assert UnOp("-", Var("x", F32)).dtype == F32
    assert UnOp("!", Var("x", I32)).dtype == BOOL
    with pytest.raises(IRTypeError):
        UnOp("~", Var("x", F32))
    with pytest.raises(IRTypeError):
        UnOp("?", Var("x", I32))


def test_operator_sugar_builds_binops():
    a, b = Var("a", I32), Var("b", I32)
    assert isinstance(a + b, BinOp) and (a + b).op == "+"
    assert (a + 1).rhs == const(1)
    assert (1 + a).lhs == const(1)
    assert (a < b).dtype == BOOL
    assert a.eq(b).op == "=="
    assert a.ne(0).op == "!="
    assert (-a).op == "-"
    assert a.logical_and(b).op == "&&"


def test_load_typing():
    p = Param("buf", PointerType(F32))
    ld = Load(p, Var("i", I32))
    assert ld.dtype == F32
    with pytest.raises(IRTypeError):
        Load(p, Var("f", F32))  # float index
    with pytest.raises(IRTypeError):
        Load(Var("x", I32), const(0))  # non-pointer base


def test_param_pointer_has_no_scalar_dtype():
    p = Param("buf", PointerType(I8))
    assert p.is_pointer
    with pytest.raises(IRTypeError):
        _ = p.dtype


def test_call_typing_and_arity():
    assert Call("sqrt", (Var("x", F32),)).dtype == F32
    assert Call("sqrt", (Var("x", F64),)).dtype == F64
    assert Call("sqrt", (Var("i", I32),)).dtype == F32  # int promotes
    assert Call("min", (Var("a", I32), Var("b", I32))).dtype == I32
    assert Call("max", (Var("a", F32), Var("b", F64))).dtype == F64
    with pytest.raises(IRTypeError):
        Call("sqrt", (Var("a", F32), Var("b", F32)))
    with pytest.raises(IRTypeError):
        Call("nosuch", (Var("a", F32),))


def test_select_typing():
    s = Select(Var("c", BOOL), Var("a", I32), Var("b", F32))
    assert s.dtype == F32
    assert len(s.children()) == 3


def test_expressions_hashable():
    a = Var("a", I32) + Var("b", I32)
    b = Var("a", I32) + Var("b", I32)
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1

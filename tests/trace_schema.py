"""Schema checker for exported Chrome trace-event JSON files.

Validates the structural contract of traces written by
``repro.obs.export.write_chrome_trace`` (and ``repro run --trace``):
the trace-event envelope, per-phase event fields, span-id/parent
linkage, and the monotonic non-negativity of simulated timestamps.

Usable two ways:

* from pytest — ``validate_chrome_trace(obj)`` returns a list of
  problem strings (empty list == valid);
* as a CLI gate for CI — ``python tests/trace_schema.py trace.json``
  exits 0 on a valid file and 1 with the problems printed otherwise.
"""

from __future__ import annotations

import json
import sys

#: span categories the exporter may emit (mirrors repro.obs.tracer.SpanKind
#: without importing it, so the checker stands alone as a CI tool)
KNOWN_CATS = {
    "compile", "launch", "phase", "exec", "collective", "round",
    "fault", "tune", "counter", "ckpt", "serve", "slo",
}

#: metadata record names the exporter emits
KNOWN_META = {"process_name", "process_sort_index"}

#: counter tracks the netflow ledger appends (repro.obs.netflow).  Any
#: counter event whose name starts with "net." must be one of these —
#: a typo'd network track would otherwise silently render as an empty
#: lane in Perfetto.
NET_COUNTERS = {"net.link_busy", "net.contention"}


def validate_chrome_trace(obj) -> list[str]:
    """Every schema violation in ``obj`` (a parsed trace), best-effort.

    An empty list means the trace is valid.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    if obj.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append("'displayTimeUnit' must be 'ms' or 'ns'")

    ids: set[int] = set()
    parents: list[tuple[int, int]] = []  # (event index, parent id)
    # per-(pid, counter name) last sample timestamp: a counter track's
    # samples must be emitted in non-decreasing ts order or the viewer
    # draws the step series wrong
    counter_ts: dict[tuple[int, str], float] = {}
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "C"):
            problems.append(
                f"{where}: ph must be 'X', 'i', 'M' or 'C', got {ph!r}"
            )
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing non-empty 'name'")
        if not isinstance(ev.get("pid"), int) or ev.get("pid", -1) < 0:
            problems.append(f"{where}: 'pid' must be a non-negative int")
        if not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: 'tid' must be an int")
        if ph == "M":
            if ev.get("name") not in KNOWN_META:
                problems.append(
                    f"{where}: unknown metadata record {ev.get('name')!r}"
                )
            continue
        # duration ("X") and instant ("i") events
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a number >= 0, got {ts!r}")
        if ev.get("cat") not in KNOWN_CATS:
            problems.append(f"{where}: unknown 'cat' {ev.get('cat')!r}")
        args = ev.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")
            args = {}
        if ph == "C":
            # Perfetto counter-track sample: one numeric series value per
            # args key; no span id/parent (counters are not intervals)
            if not args:
                problems.append(f"{where}: counter event has empty args")
            for k, v in args.items():
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    problems.append(
                        f"{where}: counter series {k!r} must be a number, "
                        f"got {v!r}"
                    )
            name = ev.get("name")
            if isinstance(name, str):
                if name.startswith("net.") and name not in NET_COUNTERS:
                    problems.append(
                        f"{where}: unknown network counter track {name!r} "
                        f"(known: {sorted(NET_COUNTERS)})"
                    )
                if isinstance(ts, (int, float)):
                    key = (ev.get("pid", -1), name)
                    last = counter_ts.get(key)
                    if last is not None and ts < last:
                        problems.append(
                            f"{where}: counter {name!r} ts {ts} goes "
                            f"backwards (previous sample at {last})"
                        )
                    else:
                        counter_ts[key] = ts
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: 'dur' must be a number >= 0, got {dur!r}"
                )
        else:  # instant
            if ev.get("s") not in ("g", "p", "t"):
                problems.append(
                    f"{where}: instant scope 's' must be g/p/t, "
                    f"got {ev.get('s')!r}"
                )
        sid = args.get("id")
        if not isinstance(sid, int):
            problems.append(f"{where}: args.id must be an int span id")
        elif sid in ids:
            problems.append(f"{where}: duplicate span id {sid}")
        else:
            ids.add(sid)
        if "parent" in args:
            if not isinstance(args["parent"], int):
                problems.append(f"{where}: args.parent must be an int")
            else:
                parents.append((i, args["parent"]))
    for i, parent in parents:
        if parent not in ids:
            problems.append(
                f"event[{i}]: parent {parent} is not any event's span id"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: python tests/trace_schema.py TRACE.json", file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as f:
            obj = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot load {argv[0]!r}: {e}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(obj)
    if problems:
        for p in problems:
            print(f"SCHEMA: {p}", file=sys.stderr)
        print(f"{argv[0]}: INVALID ({len(problems)} problem(s))",
              file=sys.stderr)
        return 1
    n = len(obj["traceEvents"])
    print(f"{argv[0]}: valid Chrome trace ({n} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Per-thread local arrays: parsing, isolation, spans, analysis."""

import numpy as np
import pytest

from repro.analysis import analyze_kernel
from repro.errors import InterpError, ParseError
from repro.frontend.parser import parse_kernel
from repro.interp import LaunchConfig, run_grid
from repro.ir import print_kernel

WINDOW_SRC = """
__global__ void window_max(const float *x, float *y, int n) {
    float window[4];
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (g >= n) return;
    for (int i = 0; i < 4; i++) {
        window[i] = x[(g + i) % n];
    }
    float best = window[0];
    for (int i = 1; i < 4; i++) {
        best = fmaxf(best, window[i]);
    }
    y[g] = best;
}
"""


def _run(src, span=1, n=500, grid=4, block=256):
    k = parse_kernel(src)
    x = np.random.default_rng(1).random(n).astype(np.float32)
    y = np.zeros(n, dtype=np.float32)
    run_grid(k, LaunchConfig.make(grid, block), {"x": x, "y": y, "n": n},
             span=span)
    return x, y


def test_local_array_window_max():
    x, y = _run(WINDOW_SRC)
    ref = np.max([np.roll(x, -i) for i in range(4)], axis=0).astype(np.float32)
    assert np.array_equal(y, ref)


def test_local_array_span_equivalence():
    x1, y1 = _run(WINDOW_SRC, span=1)
    x2, y2 = _run(WINDOW_SRC, span=128)
    assert np.array_equal(y1, y2)


def test_local_arrays_are_per_thread():
    # each lane writes its own slot; no cross-lane bleed
    src = """
__global__ void k(const float *x, float *y, int n) {
    float acc[2];
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    acc[0] = (float)g;
    acc[1] = (float)(g * 2);
    if (g < n) y[g] = acc[0] + acc[1];
}
"""
    _, y = _run(src, span=64, n=500)
    assert np.array_equal(y, 3.0 * np.arange(500, dtype=np.float32))


def test_local_array_zero_initialized():
    src = """
__global__ void k(const float *x, float *y, int n) {
    float acc[3];
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (g < n) y[g] = acc[2];
}
"""
    _, y = _run(src)
    assert np.all(y == 0.0)


def test_local_array_oob_detected():
    src = """
__global__ void k(const float *x, float *y, int n) {
    float acc[2];
    acc[threadIdx.x] = 1.0f;
    y[0] = acc[0];
}
"""
    with pytest.raises(InterpError, match="local-array"):
        _run(src, block=8)


def test_local_array_prints_and_ignored_by_analysis():
    k = parse_kernel(WINDOW_SRC)
    assert "float window[4];" in print_kernel(k)
    a = analyze_kernel(k)
    # only the global y store is analyzed; local writes don't disqualify
    assert a.metadata.distributable
    assert a.metadata.mem_ptrs == ["y"]


def test_local_array_parse_errors():
    with pytest.raises(ParseError, match="multi-dimensional"):
        parse_kernel(
            "__global__ void k(float *y) { float a[2][2]; y[0] = 1.0f; }"
        )
    with pytest.raises(ParseError, match="initializer"):
        parse_kernel(
            "__global__ void k(float *y) { float a[2] = {1.0f}; y[0] = 1.0f; }"
        )


def test_local_array_thread_variant_extent_rejected():
    with pytest.raises(Exception, match="invariant"):
        parse_kernel(
            "__global__ void k(float *y) { float a[threadIdx.x]; y[0] = 1.0f; }"
        )


def test_local_array_indirect_per_thread_indexing():
    # data-dependent local indexing (the hard case for vectorizers)
    src = """
__global__ void k(const float *x, float *y, int n) {
    float bins[4];
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (g >= n) return;
    for (int i = 0; i < 4; i++) bins[i] = 0.0f;
    for (int i = 0; i < 8; i++) {
        int slot = (g + i) % 4;
        bins[slot] += x[(g + i) % n];
    }
    float s = 0.0f;
    for (int i = 0; i < 4; i++) s += bins[i];
    y[g] = s;
}
"""
    x, y = _run(src, span=32, n=300)
    ref = np.zeros(300, dtype=np.float32)
    for g in range(300):
        s = np.float32(0.0)
        bins = np.zeros(4, dtype=np.float32)
        for i in range(8):
            bins[(g + i) % 4] += x[(g + i) % 300]
        for i in range(4):
            s += bins[i]
        ref[g] = s
    assert np.allclose(y, ref, rtol=1e-6)

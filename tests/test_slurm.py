"""Slurm partition simulation: scheduler invariants and Figure 1 shape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.slurm import (
    PACE_PARTITIONS,
    Job,
    PartitionScheduler,
    generate_trace,
    simulate_campus_cluster,
    simulate_partition,
    wait_stats,
)


def _job_list(draw_jobs):
    jobs = []
    for i, (t, nodes, run) in enumerate(draw_jobs):
        jobs.append(
            Job(submit_time=float(t), job_id=i, nodes=nodes,
                runtime_s=float(run), partition="p")
        )
    return jobs


@given(
    st.lists(
        st.tuples(
            st.floats(0, 1000, allow_nan=False),
            st.integers(1, 8),
            st.floats(1, 500, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    ),
    st.integers(8, 16),
)
@settings(max_examples=40, deadline=None)
def test_scheduler_invariants(raw, capacity):
    """Property: every job runs exactly once, never before submission,
    and concurrent node usage never exceeds capacity."""
    jobs = _job_list(raw)
    finished = simulate_partition("p", capacity, jobs)
    assert len(finished) == len(jobs)
    assert {j.job_id for j in finished} == {j.job_id for j in jobs}
    for j in finished:
        assert j.start_time >= j.submit_time - 1e-9
        assert j.wait_s >= 0
    # capacity check at every start event
    events = sorted(finished, key=lambda j: j.start_time)
    for j in events:
        t = j.start_time
        used = sum(
            o.nodes
            for o in finished
            if o.start_time <= t < o.end_time
        )
        assert used <= capacity, (t, used, capacity)


def test_job_wider_than_partition_rejected():
    jobs = [Job(submit_time=0.0, job_id=0, nodes=99, runtime_s=10.0,
                partition="p")]
    with pytest.raises(ReproError, match="requests"):
        simulate_partition("p", 4, jobs)


def test_fcfs_order_without_backfill_opportunity():
    # equal-width jobs: strictly FCFS
    jobs = [
        Job(submit_time=float(i), job_id=i, nodes=4, runtime_s=100.0,
            partition="p")
        for i in range(6)
    ]
    finished = simulate_partition("p", 4, jobs)
    by_id = sorted(finished, key=lambda j: j.job_id)
    starts = [j.start_time for j in by_id]
    assert starts == sorted(starts)
    assert starts[1] == pytest.approx(100.0)  # waits for the first


def test_backfill_lets_small_job_jump_safely():
    # head (4 nodes) must wait for the 4-node runner; a 1-node short job
    # can backfill without delaying the head
    jobs = [
        Job(submit_time=0.0, job_id=0, nodes=4, runtime_s=100.0, partition="p"),
        Job(submit_time=1.0, job_id=1, nodes=4, runtime_s=50.0, partition="p"),
        Job(submit_time=2.0, job_id=2, nodes=1, runtime_s=10.0, partition="p"),
    ]
    finished = {j.job_id: j for j in simulate_partition("p", 5, jobs)}
    assert finished[2].start_time < finished[1].start_time  # backfilled
    assert finished[1].start_time == pytest.approx(100.0)  # not delayed


def test_generate_trace_statistics():
    rng = np.random.default_rng(0)
    jobs = generate_trace("p", 64, 0.5, 7 * 24 * 3600, rng)
    assert len(jobs) > 100
    assert all(1 <= j.nodes <= 16 for j in jobs)
    assert all(60 <= j.runtime_s <= 96 * 3600 for j in jobs)
    times = [j.submit_time for j in jobs]
    assert times == sorted(times)
    with pytest.raises(ValueError):
        generate_trace("p", 64, 0.0, 100.0, rng)


def test_wait_stats_fields():
    jobs = [
        Job(submit_time=0.0, job_id=0, nodes=1, runtime_s=10.0,
            partition="p", start_time=5.0),
        Job(submit_time=0.0, job_id=1, nodes=1, runtime_s=10.0,
            partition="p", start_time=15.0),
    ]
    s = wait_stats("p", jobs, num_nodes=2, duration_s=100.0)
    assert s.mean_s == 10.0 and s.max_s == 15.0
    assert s.jobs == 2 and 0 < s.utilization <= 1
    assert "Mean wait" in s.row()


def test_figure1_shape_gpu_waits_dominate():
    stats = simulate_campus_cluster(seed=1)
    assert len(stats) == len(PACE_PARTITIONS)
    cpu = [s for s in stats if s.partition.startswith("cpu")]
    gpu = [s for s in stats if s.partition.startswith("gpu")]
    cpu_wait = np.mean([s.mean_s for s in cpu])
    gpu_wait = np.mean([s.mean_s for s in gpu])
    # the paper's claim: GPU queues are far longer while CPUs sit idle
    assert gpu_wait > 50 * (cpu_wait + 1.0)
    assert all(s.utilization < 0.7 for s in cpu)
    assert all(s.utilization > 0.7 for s in gpu)


# ---------------------------------------------------------------------------
# node failures and rescheduling
# ---------------------------------------------------------------------------
def test_node_failure_requeues_running_job_with_fewer_nodes():
    jobs = [Job(submit_time=0.0, job_id=1, nodes=2, runtime_s=100.0,
                partition="p")]
    finished = simulate_partition("p", 2, jobs, failure_times=[50.0])
    (j,) = finished
    assert j.requeues == 1
    assert j.nodes == 1  # resubmitted with the surviving node count
    assert j.start_time == pytest.approx(50.0)  # restarted at the failure
    assert j.end_time == pytest.approx(150.0)


def test_node_failure_on_idle_node_leaves_jobs_alone():
    jobs = [Job(submit_time=0.0, job_id=1, nodes=1, runtime_s=10.0,
                partition="p")]
    finished = simulate_partition("p", 4, jobs, failure_times=[5.0])
    (j,) = finished
    assert j.requeues == 0 and j.start_time == 0.0


def test_node_failure_delays_queue():
    # capacity 2: failure at t=10 kills the running 2-node job; it requeues
    # ahead of the later submission and both serialize on the 1 node left
    jobs = [
        Job(submit_time=0.0, job_id=0, nodes=2, runtime_s=20.0, partition="p"),
        Job(submit_time=5.0, job_id=1, nodes=1, runtime_s=20.0, partition="p"),
    ]
    finished = {j.job_id: j
                for j in simulate_partition("p", 2, jobs,
                                            failure_times=[10.0])}
    assert finished[0].requeues == 1 and finished[0].nodes == 1
    assert finished[0].start_time == pytest.approx(10.0)  # requeued at head
    assert finished[1].start_time == pytest.approx(30.0)  # after the requeue


def test_failure_free_runs_are_unchanged_by_empty_failure_list():
    jobs = [
        Job(submit_time=float(i), job_id=i, nodes=2, runtime_s=30.0,
            partition="p")
        for i in range(5)
    ]
    a = simulate_partition("p", 4, [Job(**vars(j)) for j in jobs])
    b = simulate_partition("p", 4, [Job(**vars(j)) for j in jobs],
                           failure_times=[])
    assert [(j.job_id, j.start_time) for j in a] == [
        (j.job_id, j.start_time) for j in b
    ]


@given(
    st.lists(
        st.tuples(
            st.floats(0, 1000, allow_nan=False),
            st.integers(1, 4),
            st.floats(1, 500, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    ),
    st.integers(10, 16),
    st.lists(st.floats(0, 1500, allow_nan=False), max_size=3),
    st.lists(st.floats(0, 1500, allow_nan=False), max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_scheduler_invariants_with_failures_and_returns(
    raw, capacity, fails, rets
):
    """Property: under any failure + node-return schedule every job
    still runs, never widens past its born allocation, and never starts
    before submission."""
    jobs = _job_list(raw)
    finished = simulate_partition(
        "p", capacity, jobs, failure_times=fails, return_times=rets
    )
    assert len(finished) == len(jobs)
    assert {j.job_id for j in finished} == {j.job_id for j in jobs}
    for j in finished:
        assert j.start_time >= j.submit_time - 1e-9
        assert 1 <= j.nodes <= j.born_nodes


# -- subset leasing (the repro.serve admission layer) --------------------


def test_lease_takes_lowest_ids_and_release_restores():
    s = PartitionScheduler("p", 6)
    a = s.lease(2)
    b = s.lease(3)
    assert a == (0, 1) and b == (2, 3, 4)
    assert s.free_nodes == 1 and s.leased_nodes == (0, 1, 2, 3, 4)
    with pytest.raises(ReproError, match="cannot lease"):
        s.lease(2)
    s.release(a)
    assert s.free_nodes == 3
    with pytest.raises(ReproError, match="not leased"):
        s.release(a)  # double release
    assert s.lease(3) == (0, 1, 5)  # lowest free ids win, deterministic
    with pytest.raises(ReproError):
        s.lease(0)


def test_lease_and_batch_queue_share_the_node_count():
    # a lease removes nodes from the batch queue's pool and vice versa
    s = PartitionScheduler("p", 4)
    s.lease(3)
    s.queue.append(Job(submit_time=0.0, job_id=1, nodes=2, runtime_s=5.0,
                       partition="p"))
    s.schedule(0.0)
    assert s.queue  # 2-node job cannot start beside a 3-node lease
    s.release((0, 1, 2))
    s.schedule(1.0)
    assert not s.queue and s.free_nodes == 2


def test_fail_and_return_keep_lease_pool_coherent():
    s = PartitionScheduler("p", 4)
    ids = s.lease(2)  # (0, 1)
    s.fail_node(0.0)  # drains an idle node: highest free id (3) goes
    assert s.num_nodes == 3 and s.free_nodes == 1
    assert s.lease(1) == (2,)
    s.release(ids)
    s.return_node(1.0)  # fresh id joins the free pool
    assert s.num_nodes == 4 and s.free_nodes == 3
    assert s.lease(3) == (0, 1, 3)

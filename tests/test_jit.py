"""Unit tests for the JIT fast-path backend (:mod:`repro.interp.jit`).

Covers the pieces the differential gate does not: the mask-free proof
obligation, specialization keys (including the structural-identity
regression the gate surfaced), the persistent compile cache's integrity
checks, and the ``run_grid``/``CuCCRuntime`` backend wiring.
"""

import numpy as np
import pytest

from repro.errors import JITError, JITUnsupported, LaunchError
from repro.frontend.parser import parse_kernel
from repro.interp import LaunchConfig, OpCounters, run_grid
from repro.interp.jit import (
    CompileCache,
    JITBlockExecutor,
    clear_memo,
    compile_stats,
    diff_grid,
    generate_source,
    get_program,
    program_key,
    source_digest,
)
from repro.ir import F32, I32, IRBuilder

# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

_STRAIGHT_SRC = """
__global__ void straight(float* x, float* y) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    y[i] = x[i] * 2.0f + 1.0f;
}"""

_GUARDED_SRC = """
__global__ void guarded(float* x, float* y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = x[i] * 2.0f; }
}"""


def _straight():
    return parse_kernel(_STRAIGHT_SRC)


def _guarded():
    return parse_kernel(_GUARDED_SRC)


# ---------------------------------------------------------------------------
# mask-free proof
# ---------------------------------------------------------------------------


def test_straight_line_kernel_proved_mask_free():
    src, mask_free = generate_source(_straight())
    assert mask_free
    # the proof is structural: no statement-level divergence mask is ever
    # materialized, so the only mask in the module is the all-true m0
    assert "m0 = np.ones" in src
    assert "m1" not in src


def test_guarded_kernel_not_mask_free():
    _, mask_free = generate_source(_guarded())
    assert not mask_free


def test_invariant_loop_stays_mask_free():
    kernel = parse_kernel("""
__global__ void unrolled(float* x, float* y) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0f;
    for (int k = 0; k < 4; k = k + 1) { acc = acc + x[i] * k; }
    y[i] = acc;
}""")
    _, mask_free = generate_source(kernel)
    assert mask_free


# ---------------------------------------------------------------------------
# specialization keys + memo
# ---------------------------------------------------------------------------


def test_program_memoized_per_key():
    clear_memo()
    k = _straight()
    before = compile_stats["compiles"]
    p1 = get_program(k, (64, 1, 1))
    p2 = get_program(k, (64, 1, 1))
    assert p1 is p2
    assert compile_stats["compiles"] == before + 1


def test_key_varies_with_block_and_bounds_check():
    k = _straight()
    base = program_key(k, (64, 1, 1), True)
    assert program_key(k, (128, 1, 1), True) != base
    assert program_key(k, (64, 1, 1), False) != base


def test_key_is_structural_not_textual():
    """Regression: the gate caught a stale-specialization bug.

    ``simplify_kernel`` folds ``UnOp('-', Const(1))`` into ``Const(-1)``;
    both *print* identically, but the interpreter counts the explicit
    negation as an int op.  A key derived from printed text served the
    unlowered kernel's program (extra op counted) for the simplified
    kernel, shifting CuCC phase times by ~0.5%.  The key must hash the
    IR's structural repr, under which the two differ.
    """
    from repro.ir.expr import Const, UnOp
    from repro.ir.printer import print_kernel
    from repro.transform.simplify import simplify_kernel

    def build():
        b = IRBuilder("negstep")
        out = b.pointer_param("out", I32)
        with b.for_("i", 3, 0, step=UnOp("-", Const(1, I32))) as i:
            b.store(out, i, i)
        return b.finish()

    raw = build()
    lowered = simplify_kernel(raw)
    assert print_kernel(raw) == print_kernel(lowered)  # the trap
    assert repr(raw) != repr(lowered)
    assert program_key(raw, (4, 1, 1), True) != program_key(
        lowered, (4, 1, 1), True
    )
    # and both specializations are bit-identical to the interpreter
    for k in (raw, lowered):
        res = diff_grid(k, 1, 4, {"out": np.zeros(4, np.int32)})
        assert res.identical, res.mismatches


def test_interp_and_jit_count_the_unary_negation_identically():
    """Companion to the keying regression: the folded and unfolded loop
    steps must each agree across backends on the op counters — the
    divergence the gate originally reported was exactly here."""
    from repro.ir.expr import Const, UnOp

    b = IRBuilder("negstep2")
    out = b.pointer_param("out", I32)
    with b.for_("i", 3, 0, step=UnOp("-", Const(1, I32))) as i:
        b.store(out, i, i)
    kernel = b.finish()
    ci, cj = OpCounters(), OpCounters()
    run_grid(kernel, LaunchConfig.make(1, 4),
             {"out": np.zeros(4, np.int32)}, counters=ci, backend="interp")
    run_grid(kernel, LaunchConfig.make(1, 4),
             {"out": np.zeros(4, np.int32)}, counters=cj, backend="jit")
    assert ci.as_dict() == cj.as_dict()


# ---------------------------------------------------------------------------
# persistent compile cache
# ---------------------------------------------------------------------------


def test_cache_roundtrip(tmp_path):
    path = tmp_path / "jit.json"
    cache = CompileCache(path=path)
    clear_memo()
    k = _straight()
    get_program(k, (64, 1, 1), cache=cache)
    assert len(cache) == 1 and path.exists()

    clear_memo()
    reloaded = CompileCache.load(path)
    before = compile_stats["cache_hits"]
    prog = get_program(k, (64, 1, 1), cache=reloaded)
    assert prog.from_cache
    assert compile_stats["cache_hits"] == before + 1
    # the cached program still passes the differential
    res = diff_grid(
        k, 2, 64,
        {"x": np.arange(128, dtype=np.float32),
         "y": np.zeros(128, np.float32)},
    )
    assert res.identical, res.mismatches


def test_corrupted_cache_entry_rejected_and_recompiled(tmp_path):
    """A damaged entry must be a miss, not a trusted program: the cache
    may speed a run up but can never change what it computes."""
    import json

    path = tmp_path / "jit.json"
    cache = CompileCache(path=path)
    clear_memo()
    k = _straight()
    key = program_key(k, (64, 1, 1), True)
    get_program(k, (64, 1, 1), cache=cache)

    # tamper with the stored source without updating the digest
    doc = json.loads(path.read_text())
    doc["entries"][key]["source"] += "\nTAMPERED = True\n"
    path.write_text(json.dumps(doc))

    clear_memo()
    tampered = CompileCache.load(path)
    before = dict(compile_stats)
    prog = get_program(k, (64, 1, 1), cache=tampered)
    assert not prog.from_cache
    assert "TAMPERED" not in prog.source
    assert tampered.rejected == 1
    assert compile_stats["cache_rejects"] == before["cache_rejects"] + 1
    assert compile_stats["compiles"] == before["compiles"] + 1
    # the rejected entry was replaced by the recompiled one
    assert tampered.entries[key]["sha256"] == source_digest(
        tampered.entries[key]["source"]
    )


def test_cache_digest_mismatch_is_detected_even_with_valid_shape(tmp_path):
    cache = CompileCache(path=tmp_path / "c.json")
    cache.record("k1", "SRC", True, "k")
    cache.entries["k1"]["sha256"] = "0" * 64
    assert cache.lookup("k1") is None
    assert cache.rejected == 1 and "k1" not in cache.entries


def test_cache_version_guard(tmp_path):
    path = tmp_path / "old.json"
    path.write_text('{"version": 99, "entries": {}}')
    with pytest.raises(JITError, match="unsupported version"):
        CompileCache.load(path)


# ---------------------------------------------------------------------------
# backend wiring
# ---------------------------------------------------------------------------


def _run(kernel, grid, block, args, backend, **kw):
    counters = OpCounters()
    run_grid(kernel, LaunchConfig.make(grid, block), args,
             counters=counters, backend=backend, **kw)
    return counters


def test_run_grid_backend_bit_identity():
    k = _guarded()
    mk = lambda: {"x": np.arange(256, dtype=np.float32),
                  "y": np.zeros(256, np.float32), "n": 200}
    ai, aj = mk(), mk()
    ci = _run(k, 4, 64, ai, "interp")
    cj = _run(k, 4, 64, aj, "jit")
    assert ci.as_dict() == cj.as_dict()
    assert ai["y"].tobytes() == aj["y"].tobytes()


def test_run_grid_rejects_unknown_backend():
    with pytest.raises(LaunchError, match="unknown backend"):
        run_grid(_straight(), LaunchConfig.make(1, 4),
                 {"x": np.zeros(4, np.float32), "y": np.zeros(4, np.float32)},
                 backend="cuda")


def test_jit_backend_rejects_sanitize_hook():
    with pytest.raises(LaunchError, match="sanitize/profile"):
        run_grid(_straight(), LaunchConfig.make(1, 4),
                 {"x": np.zeros(4, np.float32), "y": np.zeros(4, np.float32)},
                 backend="jit", sanitize=True)


def test_auto_backend_with_sanitize_falls_back_to_interp():
    # auto + sanitizer: the hook observes the tree-walker, so the run
    # must go through it (and still work)
    ex = run_grid(_guarded(), LaunchConfig.make(1, 64),
                  {"x": np.zeros(64, np.float32),
                   "y": np.zeros(64, np.float32), "n": 64},
                  backend="auto", sanitize=True)
    assert not isinstance(ex, JITBlockExecutor)


def _conflicting_types_kernel():
    b = IRBuilder("conflict")
    out = b.pointer_param("out", F32)
    x = b.let("x", 1, I32)
    b.assign(x, 1)
    k = b.finish(validate=False)
    # rewrite the second assignment to a float to create the conflict
    from dataclasses import replace

    from repro.ir.expr import Const

    k.body[1] = replace(k.body[1], value=Const(1.5, F32), type=F32)
    return k


def test_unsupported_kernel_raises_under_jit_falls_back_under_auto():
    k = _conflicting_types_kernel()
    with pytest.raises(JITUnsupported, match="conflicting types"):
        get_program(k, (4, 1, 1))


def test_cucc_runtime_backend_validation():
    from repro.cluster import make_cluster
    from repro.errors import LaunchError
    from repro.runtime.cucc import CuCCRuntime

    with pytest.raises(LaunchError, match="unknown backend"):
        CuCCRuntime(make_cluster("simd-focused", 2), backend="fast")
    with pytest.raises(LaunchError, match="sanitize/profile"):
        CuCCRuntime(make_cluster("simd-focused", 2), backend="jit",
                    profile=True)


# ---------------------------------------------------------------------------
# masked-access counter identity (satellite: _count_lines fix)
# ---------------------------------------------------------------------------


def test_masked_access_line_traffic_counts_active_lanes_only():
    """Partially-masked gather: inactive lanes' addresses must not widen
    the 64-byte-line span estimate, and interp/JIT must agree exactly."""
    kernel = parse_kernel("""
__global__ void gather(float* x, int* idx, float* y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = x[idx[i]]; }
}""")
    nlanes = 64
    idx = np.zeros(nlanes, dtype=np.int32)
    idx[:8] = np.arange(8)          # active lanes touch 8 contiguous cells
    idx[8:] = 4096 - 1              # inactive lanes point far away
    x = np.arange(4096, dtype=np.float32)

    mk = lambda: {"x": x.copy(), "idx": idx.copy(),
                  "y": np.zeros(nlanes, np.float32), "n": 8}
    ci = _run(kernel, 1, nlanes, mk(), "interp")
    cj = _run(kernel, 1, nlanes, mk(), "jit")
    assert ci.as_dict() == cj.as_dict()
    # 8 active lanes over 8 contiguous float32 cells = 32 bytes -> 1 line
    # per access statement; had inactive addresses leaked in, the span
    # would cover ~4096 cells (= 8 lines * 64B, capped by active lanes)
    assert ci.global_line_bytes <= 64.0 * 8 * 3


def test_compile_cache_save_survives_injected_partial_write(
    tmp_path, monkeypatch
):
    """Same atomicity contract as the tuning cache: a torn save must not
    corrupt the shared on-disk compile cache."""
    import repro.ioutil as ioutil

    path = tmp_path / "jit.json"
    cache = CompileCache(path=path)
    clear_memo()
    get_program(_straight(), (64, 1, 1), cache=cache)
    good = path.read_text()

    monkeypatch.setattr(
        ioutil.os, "replace",
        lambda *a: (_ for _ in ()).throw(OSError("disk full")),
    )
    with pytest.raises(OSError):
        cache.save()
    monkeypatch.undo()
    assert path.read_text() == good
    assert not (tmp_path / "jit.json.tmp").exists()
    # the surviving file is a complete, loadable document
    assert len(CompileCache.load(path)) == 1

"""The network observatory: per-link flow ledger, contention
attribution, and ``repro netview`` (DESIGN.md §16).

Four contracts are pinned here:

* **conservation of bytes** — for every Allgather algorithm on every
  topology, with and without faults, the ledger's per-pair byte sums
  equal the communicator's ``comm.link_bytes`` metrics *exactly*;
* **exact decomposition** — alpha + serialization + contention + local
  reconstructs every collective's modeled span bit-for-bit;
* **observer effect zero** — netflow on/off runs are bit-identical
  (buffers, OpCounters, PhaseTimes, makespan), the counter tracks are
  strictly appended after everything else, and a run without netflow
  never imports the module;
* **attribution** — on fat-trees the uplinks out-rank intra-switch
  links, contention blames the causing leaf switch, and under serving
  every flow carries its job_id.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_on_cucc
from repro.cli import main as cli_main
from repro.cluster import Cluster, make_cluster, make_topology
from repro.cluster.collectives import ALLGATHER_ALGOS
from repro.cluster.faults import (
    FaultInjector,
    FaultPlan,
    NodeCrash,
    StragglerFault,
)
from repro.errors import ReproError
from repro.hw import INFINIBAND_100G, SIMD_FOCUSED_NODE
from repro.obs import METRICS, MetricsRegistry, SpanKind, Tracer
from repro.obs.netflow import NETFLOW_FORMAT_VERSION, NetFlowLedger
from repro.obs.netview import (
    format_explain_tune,
    format_heatmap,
    format_netview,
    load_netflow,
)
from repro.serve import CuCCServer, ServeConfig, synth_requests
from repro.workloads import PERF_WORKLOADS
from trace_schema import validate_chrome_trace

NET = INFINIBAND_100G

#: the satellite matrix: every algorithm on every topology shape
TOPOLOGY_KINDS = ("flat", "fat-tree:2", "ring", "torus")


@pytest.fixture(autouse=True)
def fresh_metrics():
    METRICS.reset()
    yield
    METRICS.reset()


def _cluster(n, topo_kind, total_elems):
    topo = make_topology(topo_kind, n, network=NET)
    cl = Cluster(SIMD_FOCUSED_NODE, n, topology=topo)
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=(n, total_elems), dtype=np.uint8)
    for r, node in enumerate(cl.nodes):
        node.alloc("d", total_elems, np.uint8)[:] = data[r]
    return cl


def _observe(cl):
    """Attach a private registry + a fresh ledger; return both."""
    reg = MetricsRegistry()
    cl.comm.metrics = reg
    ledger = NetFlowLedger()
    cl.comm.netflow = ledger
    return reg, ledger


def _assert_bytes_conserved(ledger, registry):
    """Ledger per-pair sums == comm.link_bytes metrics, pair by pair."""
    pairs = ledger.pair_bytes()
    for (src, dst), nbytes in pairs.items():
        metered = registry.value("comm.link_bytes", src=src, dst=dst)
        assert metered == nbytes, (
            f"pair {src}->{dst}: ledger says {nbytes}, metrics {metered}"
        )
    assert sum(pairs.values()) == registry.total("comm.link_bytes")


# ---------------------------------------------------------------------------
# satellite: conservation of bytes, under hypothesis
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    algo=st.sampled_from(ALLGATHER_ALGOS),
    topo_kind=st.sampled_from(TOPOLOGY_KINDS),
    n=st.integers(min_value=2, max_value=9),
    per_rank=st.integers(min_value=0, max_value=96),
    straggler=st.booleans(),
)
def test_conservation_of_bytes(algo, topo_kind, n, per_rank, straggler):
    cl = _cluster(n, topo_kind, max(1, n * per_rank))
    reg, ledger = _observe(cl)
    if straggler:
        plan = FaultPlan(
            (StragglerFault(rank=n - 1, compute=2.0, network=3.0),), seed=0
        )
        cl.comm.injector = FaultInjector(plan)
        cl.comm.injector.begin_launch(cl.nodes)
    cl.comm.allgather_in_place("d", 0, per_rank, algo=algo)
    _assert_bytes_conserved(ledger, reg)
    if per_rank == 0 or n == 1:
        assert len(ledger) == 0 or not ledger.flows()


def test_conservation_survives_a_crash_shrink():
    # the "with faults" leg: gather, lose a node, shrink, gather again —
    # the carried ledger stays in lock-step with the carried metrics
    cl = _cluster(6, "fat-tree:2", 6 * 16)
    reg, ledger = _observe(cl)
    cl.comm.allgather_in_place("d", 0, 16, algo="bruck")
    cl.nodes[2].alive = False
    cl.remove_dead()
    assert cl.comm.netflow is ledger  # carried across the rebuild
    for node in cl.nodes:
        node.alloc("e", 5 * 8, np.uint8)
    cl.comm.allgather_in_place("e", 0, 8, algo="ring")
    _assert_bytes_conserved(ledger, reg)
    assert {c.buffer for c in ledger.collectives()} == {"d", "e"}


@pytest.mark.parametrize("topo_kind", TOPOLOGY_KINDS)
def test_conservation_of_allgatherv(topo_kind):
    counts = [0, 5, 1, 16, 0, 7, 3, 2]
    cl = _cluster(8, topo_kind, sum(counts))
    reg, ledger = _observe(cl)
    cl.comm.allgatherv_in_place("d", 0, counts, algo="ring")
    _assert_bytes_conserved(ledger, reg)
    assert sum(ledger.pair_bytes().values()) > 0


# ---------------------------------------------------------------------------
# exact decomposition
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algo", ALLGATHER_ALGOS)
@pytest.mark.parametrize("topo_kind", TOPOLOGY_KINDS)
def test_decomposition_reconstructs_span_exactly(algo, topo_kind):
    cl = _cluster(8, topo_kind, 8 * 64)
    _, ledger = _observe(cl)
    tracer = Tracer(enabled=True)
    cl.comm.tracer = tracer
    dur = cl.comm.allgather_in_place("d", 0, 64, algo=algo)
    (c,) = ledger.collectives()
    # the four components rebuild the modeled span bit-for-bit, in the
    # ledger's own summation order
    assert c.reconstructed_s == c.span_s
    assert c.local_s == 0.0  # in-place: no copy term
    (span,) = [s for s in tracer.spans if s.kind == SpanKind.COLLECTIVE]
    assert c.span_s == span.args["dur_s"] == dur
    assert c.alpha_s >= 0 and c.serial_s >= 0 and c.contention_s >= 0


def test_out_of_place_copy_lands_in_local_component():
    cl = _cluster(4, "flat", 4 * 32)
    for node in cl.nodes:
        node.alloc("src", 32, np.uint8)[:] = node.buffer("d")[:32]
    _, ledger = _observe(cl)
    dur = cl.comm.allgather_out_of_place("src", "d", 32, copy_GBs=10.0,
                                         algo="ring")
    (c,) = ledger.collectives()
    assert c.op == "allgather-oop"
    assert c.local_s > 0.0  # the copy term, excluded from wire time
    assert c.reconstructed_s == c.span_s == dur


# ---------------------------------------------------------------------------
# attribution: uplinks, contention, leaf-switch blame
# ---------------------------------------------------------------------------
def test_uplinks_outrank_intra_switch_links():
    cl = _cluster(8, "fat-tree:2", 8 * 128)
    _, ledger = _observe(cl)
    cl.comm.allgather_in_place("d", 0, 128, algo="bruck")
    links = sorted(ledger.links().items(), key=lambda kv: -kv[1]["bytes"])
    kinds = [entry["kind"] for _, entry in links]
    n_up = sum(1 for k in kinds if k == "uplink")
    assert n_up > 0 and all(k == "uplink" for k in kinds[:n_up]), (
        "every uplink must carry more bytes than any intra-switch link"
    )
    # contention is attributed to the causing leaf switch's uplink only
    for label, entry in links:
        if entry["queue_s"] > 0:
            assert entry["kind"] == "uplink" and label.startswith("uplink:s")


def test_ring_on_fat_tree_is_contention_free():
    # one crossing sender per leaf switch per round -> uplink share 1
    cl = _cluster(8, "fat-tree:2", 8 * 64)
    _, ledger = _observe(cl)
    cl.comm.allgather_in_place("d", 0, 64, algo="ring")
    assert all(f.share == 1 for f in ledger.flows())
    assert all(c.contention_s == 0.0 for c in ledger.collectives())


def test_contending_algos_blame_shared_uplinks():
    cl = _cluster(8, "fat-tree:2", 8 * 64)
    _, ledger = _observe(cl)
    cl.comm.allgather_in_place("d", 0, 64, algo="recursive_doubling")
    shared = [f for f in ledger.flows() if f.share > 1]
    assert shared and all(f.kind == "uplink" for f in shared)
    assert all(f.queue_s > 0 for f in shared)
    (c,) = ledger.collectives()
    assert c.contention_s > 0.0


def test_bisection_accounting():
    cl = _cluster(8, "fat-tree:2", 8 * 64)
    _, ledger = _observe(cl)
    cl.comm.allgather_in_place("d", 0, 64, algo="bruck")
    doc = ledger.to_doc()
    (b,) = doc["bisection"].values()
    assert b["bisection_bytes_per_s"] > 0
    assert b["oversubscription"] > 1.0  # 8 nodes feed 4 uplink shares
    assert 0 < b["bytes_crossing"] <= doc["totals"]["bytes"]


# ---------------------------------------------------------------------------
# observer effect: bit-identity, appended counters, zero import
# ---------------------------------------------------------------------------
def _run(name="KMeans", nodes=8, **kw):
    spec = PERF_WORKLOADS[name]("small", seed=0)
    cluster = make_cluster("simd-focused", nodes,
                           topology=make_topology("fat-tree:2", nodes,
                                                  network=NET))
    return run_on_cucc(spec, cluster, **kw)


def test_netflow_off_is_bit_identical():
    METRICS.reset()
    off = _run(netflow=False)
    METRICS.reset()
    on = _run(netflow=True)
    assert off.record.phases == on.record.phases
    assert off.runtime.sim_time == on.runtime.sim_time
    assert off.record.comm_bytes == on.record.comm_bytes
    assert off.runtime.netflow is None
    assert len(on.runtime.netflow) > 0


def test_serving_netflow_off_is_bit_identical():
    reqs = synth_requests("KMeans:1,Transpose:1", rate=2e6, jobs=6,
                          nodes=4, seed=0)
    config = dict(nodes=8, topology="fat-tree:2")
    off = CuCCServer(ServeConfig(**config)).run(list(reqs))
    METRICS.reset()
    on = CuCCServer(ServeConfig(netflow=True, **config)).run(list(reqs))
    assert [r.identity() for r in off.results] == \
           [r.identity() for r in on.results]
    assert off.stats.makespan_s == on.stats.makespan_s
    assert off.netflow is None and len(on.netflow) > 0


def test_counters_strictly_appended_after_everything_else(tmp_path):
    from repro.obs.export import write_chrome_trace

    reqs = synth_requests("KMeans", rate=2e6, jobs=4, nodes=4, seed=0)
    config = dict(nodes=8, topology="fat-tree:2", trace=True,
                  observatory=True)
    off = CuCCServer(ServeConfig(**config))
    off.run(list(reqs))
    METRICS.reset()
    on = CuCCServer(ServeConfig(netflow=True, **config))
    on.run(list(reqs))
    a = json.loads(write_chrome_trace(off.tracer, tmp_path / "off.json")
                   .read_text())["traceEvents"]
    b = json.loads(write_chrome_trace(on.tracer, tmp_path / "on.json")
                   .read_text())["traceEvents"]
    # the netflow-on trace is the netflow-off trace plus net.* counters
    # strictly appended at the end — existing consumers see an
    # identical prefix
    assert b[:len(a)] == a
    extra = b[len(a):]
    assert extra and all(
        e["ph"] == "C" and e["name"].startswith("net.") for e in extra
    )
    assert {e["name"] for e in extra} >= {"net.link_busy"}
    assert validate_chrome_trace({"traceEvents": b,
                                  "displayTimeUnit": "ms"}) == []


def test_plain_run_and_serve_never_import_netflow():
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    code = (
        "import sys; "
        "from repro.bench.harness import run_on_cucc; "
        "from repro.cluster import make_cluster; "
        "from repro.workloads import PERF_WORKLOADS; "
        "run_on_cucc(PERF_WORKLOADS['KMeans']('small', seed=0), "
        "make_cluster('simd-focused', 4)); "
        "from repro.serve import ServeConfig, serve_requests, "
        "synth_requests; "
        "reqs = synth_requests('FIR', rate=2e6, jobs=2, nodes=2, seed=0); "
        "serve_requests(reqs, ServeConfig(nodes=2)); "
        "loaded = [m for m in ('repro.obs.netflow', 'repro.obs.netview') "
        "if m in sys.modules]; "
        "print(','.join(loaded)); sys.exit(1 if loaded else 0)"
    )
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)
    assert proc.returncode == 0, (
        f"unobserved execution imported {proc.stdout.strip()}"
    )


# ---------------------------------------------------------------------------
# serving attribution
# ---------------------------------------------------------------------------
def test_serving_attributes_flows_by_job():
    reqs = synth_requests("KMeans:1,Transpose:1", rate=2e6, jobs=5,
                          nodes=4, seed=0)
    server = CuCCServer(ServeConfig(nodes=8, topology="fat-tree:2",
                                    netflow=True))
    report = server.run(list(reqs))
    jobs = {c.job_id for c in report.netflow.collectives()}
    assert jobs and all(j is not None for j in jobs)
    served = {r.request.job_id for r in report.results
              if r.status == "ok" and r.record.comm_bytes > 0}
    assert jobs == served
    doc = report.netflow.to_doc()
    assert set(doc["jobs"]) == jobs
    assert sum(j["bytes"] for j in doc["jobs"].values()) == \
        doc["totals"]["bytes"]
    # flows carry physical pool node ids, so uplink labels name the job
    for f in report.netflow.flows():
        if f.kind == "uplink":
            assert f.link.startswith("uplink:job-")


def test_adopt_shifts_and_remaps():
    cl = _cluster(4, "flat", 4 * 8)
    _, ledger = _observe(cl)
    cl.comm.allgather_in_place("d", 0, 8, algo="ring")
    adopted = NetFlowLedger()
    adopted.adopt(ledger._raw, shift=1.5, job_id="job-X",
                  node_map=(10, 11, 12, 13))
    (c0,), (c1,) = ledger.collectives(), adopted.collectives()
    assert c1.t0 == c0.t0 + 1.5 and c1.job_id == "job-X"
    assert c1.span_s == c0.span_s  # pricing unaffected by display remap
    assert {f.src for f in adopted.flows()} <= {10, 11, 12, 13}
    assert all(f.t0 >= 1.5 for f in adopted.flows())
    assert sum(adopted.pair_bytes().values()) == \
        sum(ledger.pair_bytes().values())


# ---------------------------------------------------------------------------
# document round-trip, netview rendering, CLI
# ---------------------------------------------------------------------------
def test_doc_roundtrip_and_version_guard(tmp_path):
    cl = _cluster(8, "fat-tree:2", 8 * 64)
    _, ledger = _observe(cl)
    cl.comm.allgather_in_place("d", 0, 64, algo="bruck")
    path = ledger.dump(tmp_path / "nf.json")
    doc = load_netflow(path)
    assert doc["kind"] == "run"
    assert doc["netflow_format_version"] == NETFLOW_FORMAT_VERSION
    text = format_netview(doc)
    assert "hottest links" in text and "uplink:s" in text
    assert "contention ranking" in text and "bisection" in text
    assert format_heatmap(doc["matrix"]).count("\n") >= 8
    # wrong version / wrong shape are rejected, not mis-rendered
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"netflow_format_version": 99, "kind": "run"}))
    with pytest.raises(ReproError, match="not supported"):
        load_netflow(bad)
    bad.write_text("{}")
    with pytest.raises(ReproError, match="not a netflow document"):
        load_netflow(bad)
    with pytest.raises(ReproError, match="explain-tune"):
        format_netview({"kind": "tune"})
    with pytest.raises(ReproError, match="run netflow document"):
        format_explain_tune(doc)


def test_dump_is_deterministic(tmp_path):
    paths = []
    for name in ("a.json", "b.json"):
        METRICS.reset()
        cl = _cluster(8, "fat-tree:2", 8 * 64)
        _, ledger = _observe(cl)
        cl.comm.allgather_in_place("d", 0, 64, algo="recursive_doubling")
        paths.append(ledger.dump(tmp_path / name))
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_cli_run_netflow_netview_and_metrics_json(tmp_path, capsys):
    nf = tmp_path / "nf.json"
    mj = tmp_path / "m.json"
    rc = cli_main(["run", "KMeans", "--nodes", "8",
                   "--topology", "fat-tree:2", "--netflow", str(nf),
                   "--metrics-json", str(mj)])
    out = capsys.readouterr().out
    assert rc == 0 and "wrote netflow ledger" in out
    rc = cli_main(["netview", str(nf)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "network view" in out and "hottest links" in out
    assert "uplink:s" in out and "oversub" in out
    # a run document is not explainable as a tune sweep
    assert cli_main(["netview", str(nf), "--explain-tune"]) == 1
    assert "run netflow document" in capsys.readouterr().err
    # metrics snapshot renders through repro report
    rc = cli_main(["report", "--metrics-json", str(mj)])
    out = capsys.readouterr().out
    assert rc == 0 and "comm.gathers" in out
    assert json.loads(mj.read_text())["metrics_format_version"] == 1


def test_cli_tune_netflow_explains_the_sweep(tmp_path, capsys):
    nf = tmp_path / "tune.json"
    rc = cli_main(["tune", "--nodes", "8", "--topology", "fat-tree:2",
                   "--payload", "1048576",
                   "--cache", str(tmp_path / "tc.json"),
                   "--netflow", str(nf)])
    assert rc == 0
    capsys.readouterr()
    rc = cli_main(["netview", "--explain-tune", str(nf)])
    out = capsys.readouterr().out
    assert rc == 0 and "tune explain" in out
    # the large-payload story: ring dodges the uplink contention the
    # recursive algorithms pay
    assert "*ring" in out and "uplink:s" in out
    doc = json.loads(nf.read_text())
    assert doc["kind"] == "tune"
    for entry in doc["payloads"]:
        trials = entry["trials"]
        assert entry["winner"] in trials
        assert sum(1 for t in trials.values() if t.get("chosen")) == 1
    # and the plain renderer refuses it
    assert cli_main(["netview", str(nf)]) == 1


def test_cli_netflow_requires_cucc_and_rejects_resume(tmp_path, capsys):
    rc = cli_main(["run", "FIR", "--platform", "pgas",
                   "--netflow", "x.json"])
    assert rc == 1
    assert "--netflow requires" in capsys.readouterr().err
    rc = cli_main(["run", "FIR", "--resume", str(tmp_path / "c.ckpt"),
                   "--netflow", "x.json"])
    assert rc == 1
    assert "--netflow is not supported with --resume" in \
        capsys.readouterr().err


def test_cli_serve_netflow(tmp_path, capsys):
    nf = tmp_path / "snf.json"
    rc = cli_main(["serve", "--mix", "KMeans", "--jobs", "3",
                   "--nodes", "8", "--job-nodes", "4",
                   "--topology", "fat-tree:2", "--seed", "0",
                   "--netflow", str(nf)])
    out = capsys.readouterr().out
    assert rc == 0 and "attributed by job_id" in out
    rc = cli_main(["netview", str(nf)])
    out = capsys.readouterr().out
    assert rc == 0 and "per-job traffic" in out and "job-00" in out


# ---------------------------------------------------------------------------
# trace schema: net counter validation
# ---------------------------------------------------------------------------
def _counter(name, ts, pid=0, value=1.0):
    return {"ph": "C", "name": name, "pid": pid, "tid": 0, "ts": ts,
            "cat": "counter", "args": {"value": value}}


def test_schema_rejects_unknown_net_counter():
    trace = {"displayTimeUnit": "ms",
             "traceEvents": [_counter("net.bogus_track", 0.0)]}
    problems = validate_chrome_trace(trace)
    assert any("unknown network counter" in p for p in problems)


def test_schema_rejects_backwards_counter_timestamps():
    trace = {"displayTimeUnit": "ms",
             "traceEvents": [_counter("net.link_busy", 5.0),
                             _counter("net.link_busy", 3.0)]}
    problems = validate_chrome_trace(trace)
    assert any("goes backwards" in p for p in problems)
    # distinct pids are distinct tracks: no ordering constraint between
    trace = {"displayTimeUnit": "ms",
             "traceEvents": [_counter("net.link_busy", 5.0, pid=1),
                             _counter("net.link_busy", 3.0, pid=2)]}
    assert validate_chrome_trace(trace) == []


def test_metrics_snapshot_json_is_deterministic():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("x.count", 2, algo="ring")
    a.observe("x.hist", 3.0)
    b.observe("x.hist", 3.0)
    b.inc("x.count", 2, algo="ring")
    assert a.snapshot_json() == b.snapshot_json()
    doc = json.loads(a.snapshot_json())
    assert doc["metrics_format_version"] == 1
    assert doc["metrics"]["x.count"]["algo=ring"] == 2.0

"""The benchmark profiling layer: counters, ranges, and model consistency."""

import numpy as np
import pytest

from repro.bench.profile import (
    get_profile,
    make_plan,
    model_gpu_time,
    model_pgas_time,
    model_single_cpu_time,
    profile_workload,
)
from repro.hw import A100, INFINIBAND_100G, SIMD_FOCUSED_NODE
from repro.workloads import PERF_WORKLOADS


@pytest.fixture(scope="module")
def fir_profile():
    return profile_workload(PERF_WORKLOADS["FIR"]("small"))


def test_profile_totals_consistent(fir_profile):
    p = fir_profile
    whole = p.counters_for_range(0, p.num_blocks)
    assert whole.flops == pytest.approx(p.total.flops, rel=1e-9)
    assert whole.global_bytes == pytest.approx(p.total.global_bytes, rel=1e-9)


def test_profile_range_additivity(fir_profile):
    p = fir_profile
    mid = p.num_blocks // 2
    a = p.counters_for_range(0, mid)
    b = p.counters_for_range(mid, p.num_blocks)
    assert a.flops + b.flops == pytest.approx(p.total.flops, rel=1e-9)
    assert p.counters_for_range(3, 3).flops == 0.0


def test_profile_tail_blocks_differ(fir_profile):
    """FIR's last block is half-empty (tail divergence): its counters must
    be smaller than a regular block's."""
    p = fir_profile
    assert len(p.tail) == 2
    assert p.tail[-1].flops < p.regular_block.flops
    assert p.tail[-2].flops == pytest.approx(p.regular_block.flops, rel=0.01)


def test_profile_verifies_outputs():
    from repro.errors import ReproError

    spec = PERF_WORKLOADS["FIR"]("small")
    spec.reference["output"] = spec.reference["output"] + 1.0  # sabotage
    with pytest.raises(ReproError, match="mismatches"):
        profile_workload(spec)


def test_profile_pgas_counts(fir_profile):
    p = fir_profile
    # FIR writes one element per logical output: global-array traffic is
    # exactly the store count
    assert p.pgas_global_ops == p.total.global_stores
    assert p.pgas_global_bytes == p.total.global_store_bytes


def test_make_plan_matches_runtime_plan(fir_profile):
    plan = make_plan(fir_profile, 4)
    assert not plan.replicated
    assert plan.num_nodes == 4
    # conservation: partial + callback covers every block once
    assert plan.executed_blocks + len(plan.callback_blocks) == plan.num_blocks


def test_models_return_positive_times(fir_profile):
    assert model_single_cpu_time(fir_profile, SIMD_FOCUSED_NODE) > 0
    assert model_gpu_time(fir_profile, A100) > 0
    for n in (1, 2, 8):
        assert model_pgas_time(fir_profile, SIMD_FOCUSED_NODE,
                               INFINIBAND_100G, n) > 0


def test_pgas_model_matches_pgas_runtime():
    """The analytical PGAS model must agree with the executing PGAS
    runtime for the same configuration."""
    from repro.baselines import PGASRuntime
    from repro.cluster import Cluster

    spec = PERF_WORKLOADS["Transpose"]("small")
    prof = profile_workload(spec)
    spec2 = PERF_WORKLOADS["Transpose"]("small")
    cl = Cluster(SIMD_FOCUSED_NODE, 4)
    rt = PGASRuntime(cl)
    for name, arr in spec2.arrays.items():
        rt.alloc(name, arr.size, arr.dtype)
        rt.memcpy_h2d(name, arr)
    rec = rt.launch(spec2.kernel, spec2.grid, spec2.block, spec2.args())
    modeled = model_pgas_time(prof, SIMD_FOCUSED_NODE, INFINIBAND_100G, 4)
    assert modeled == pytest.approx(rec.time, rel=0.1)


def test_get_profile_is_cached():
    a = get_profile("GA", "small")
    b = get_profile("GA", "small")
    assert a is b

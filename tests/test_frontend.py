"""Unit tests for the CUDA-subset lexer, parser and Python DSL."""

import numpy as np
import pytest

from repro.errors import DSLError, ParseError
from repro.frontend.dsl import kernel as dsl_kernel, ptr
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_cuda, parse_kernel
from repro.interp import LaunchConfig, run_grid
from repro.ir import (
    F32,
    F64,
    I32,
    U32,
    Atomic,
    Cast,
    For,
    If,
    Kernel,
    Select,
    SyncThreads,
    While,
    iter_stmts,
    print_kernel,
)


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------
def test_tokenize_basic():
    toks = tokenize("int x = a + 42;")
    kinds = [t.kind for t in toks]
    assert kinds == ["kw", "ident", "op", "ident", "op", "int", "op", "eof"]


def test_tokenize_floats():
    toks = tokenize("1.5f 2.0 .5 1e3 3f")
    assert [t.kind for t in toks[:-1]] == ["float"] * 5


def test_tokenize_hex_and_suffixes():
    toks = tokenize("0xFFu 123ul")
    assert [t.kind for t in toks[:-1]] == ["int", "int"]


def test_tokenize_comments_and_lines():
    toks = tokenize("a // comment\n/* block\ncomment */ b")
    assert [t.text for t in toks[:-1]] == ["a", "b"]
    assert toks[1].line == 3


def test_macro_expansion():
    toks = tokenize("#define N 1200\nint x = N;")
    assert any(t.kind == "int" and t.text == "1200" for t in toks)


def test_unknown_char_reports_location():
    with pytest.raises(ParseError, match="line"):
        tokenize("int x = `;")


# ---------------------------------------------------------------------------
# parser constructs
# ---------------------------------------------------------------------------
def test_parse_multiple_kernels():
    src = """
__global__ void a(float *x) { x[threadIdx.x] = 1.0f; }
__global__ void b(float *x) { x[threadIdx.x] = 2.0f; }
"""
    ks = parse_cuda(src)
    assert [k.name for k in ks] == ["a", "b"]


def test_parse_all_control_flow():
    src = """
__global__ void k(float *y, int n) {
    int i = 0;
    while (i < n) {
        if (i % 2 == 0) { i++; continue; }
        if (i > 100) break;
        i += 3;
    }
    for (int j = n; j > 0; j--) {
        y[j] = (float)j;
    }
    __syncthreads();
    return;
}
"""
    k = parse_kernel(src)
    stmts = list(iter_stmts(k.body))
    assert any(isinstance(s, While) for s in stmts)
    assert any(isinstance(s, For) for s in stmts)
    assert any(isinstance(s, SyncThreads) for s in stmts)


def test_parse_for_variants():
    src = """
__global__ void k(float *y) {
    for (int a = 0; a < 8; a++) y[a] = 0.0f;
    for (int b = 0; b <= 7; b += 2) y[b] = 1.0f;
    for (int c = 8; c >= 1; c--) y[c] = 2.0f;
    for (int d = 0; d < 8; d = d + 3) y[d] = 3.0f;
}
"""
    k = parse_kernel(src)
    fors = [s for s in iter_stmts(k.body) if isinstance(s, For)]
    assert len(fors) == 4


def test_parse_ternary_cast_unary():
    src = """
__global__ void k(float *y, int n) {
    int g = threadIdx.x;
    float v = (g < n) ? (float)g : -1.0f;
    y[g] = !false ? v : 0.0f;
}
"""
    k = parse_kernel(src)
    assert any(
        isinstance(e, Select)
        for s in iter_stmts(k.body)
        for ex in s.exprs()
        for e in [ex]
    ) or "?" in print_kernel(k)


def test_parse_compound_assignment_and_incdec():
    src = """
__global__ void k(int *y) {
    int a = 1;
    a += 2; a -= 1; a *= 3; a /= 2; a <<= 1; a++; a--;
    y[threadIdx.x] = a;
    y[threadIdx.x] += 5;
}
"""
    y = np.zeros(4, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 4), {"y": y})
    a = 1
    a += 2; a -= 1; a *= 3; a //= 2; a <<= 1; a += 1; a -= 1
    assert np.all(y == a + 5)


def test_parse_atomics_with_result():
    src = """
__global__ void k(int *ctr, int *slot) {
    int old = 0;
    old = atomicAdd(&ctr[0], 1);
    slot[threadIdx.x] = old;
    atomicMax(&ctr[1], threadIdx.x);
}
"""
    k = parse_kernel(src)
    atomics = [s for s in iter_stmts(k.body) if isinstance(s, Atomic)]
    assert [a.op for a in atomics] == ["add", "max"]
    assert atomics[0].result == "old"


def test_parse_shared_memory():
    src = """
__global__ void k(float *y) {
    __shared__ float tile[128];
    tile[threadIdx.x] = 1.0f;
    __syncthreads();
    y[threadIdx.x] = tile[127 - threadIdx.x];
}
"""
    y = np.zeros(128, dtype=np.float32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 128), {"y": y})
    assert np.all(y == 1.0)


def test_parse_intrinsic_mapping():
    src = """
__global__ void k(float *y) {
    float x = 2.0f;
    y[0] = sqrtf(x) + expf(x) + fminf(x, 1.0f) + fabsf(-x) + powf(x, 2.0f);
}
"""
    k = parse_kernel(src)
    text = print_kernel(k)
    for name in ("sqrt", "exp", "min", "fabs", "pow"):
        assert name in text


def test_parse_unsigned_arithmetic():
    src = """
__global__ void k(uint *y) {
    uint s = (uint)threadIdx.x * 2654435761u;
    y[threadIdx.x] = s;
}
"""
    y = np.zeros(8, dtype=np.uint32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8), {"y": y})
    ref = (np.arange(8, dtype=np.uint64) * 2654435761) % (1 << 32)
    assert np.array_equal(y, ref.astype(np.uint32))


def test_parse_const_restrict_qualifiers():
    src = "__global__ void k(const float *__restrict__ x, float *y) { y[0] = x[0]; }"
    k = parse_kernel(src)
    assert [p.name for p in k.params] == ["x", "y"]


# ---------------------------------------------------------------------------
# parser error cases
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "src,msg",
    [
        ("__global__ void k() { undeclared = 1; }", "undeclared"),
        ("__global__ void k(int n) { return n; }", "return"),
        ("__global__ void k(float *y) { y[0] = nosuchfn(1.0f); }",
         "unknown function"),
        ("__global__ void k(int **p) { }", "pointer-to-pointer"),
        ("__global__ void k(float *y) { for (int i = 0; 1 < 2; i++) {} }",
         "loop variable"),
        ("int global_var = 3;", "__global__"),
        ("__global__ void k(float *y) { y[0] = x[0]; }", "undeclared"),
    ],
)
def test_parse_errors(src, msg):
    with pytest.raises(ParseError, match=msg):
        parse_cuda(src)


def test_parse_error_has_location():
    try:
        parse_kernel("__global__ void k(float *y) {\n  y[0] = zzz;\n}")
    except ParseError as e:
        assert "line 2" in str(e)
    else:  # pragma: no cover
        pytest.fail("expected ParseError")


# ---------------------------------------------------------------------------
# DSL
# ---------------------------------------------------------------------------
def test_dsl_builds_kernel():
    @dsl_kernel(x=ptr(F32), y=ptr(F32), n=I32)
    def scale(b, x, y, n):
        gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
        with b.if_(gid < n):
            b.store(y, gid, b.load(x, gid) * 3.0)

    assert isinstance(scale, Kernel)
    assert scale.name == "scale"
    x = np.arange(10, dtype=np.float32)
    y = np.zeros(10, dtype=np.float32)
    run_grid(scale, LaunchConfig.make(2, 8), {"x": x, "y": y, "n": 10})
    assert np.allclose(y, 3 * x)


def test_dsl_name_override_and_errors():
    @dsl_kernel(name="custom", x=ptr(F32))
    def whatever(b, x):
        b.store(x, b.tid_x, 0.0)

    assert whatever.name == "custom"

    with pytest.raises(DSLError):
        @dsl_kernel(x="not a type")
        def bad(b, x):
            pass

    with pytest.raises(DSLError):
        @dsl_kernel(x=ptr(F32))
        def returns_something(b, x):
            return 42


def test_do_while():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    int i = 0;
    do { i++; } while (i < t);
    y[t] = i;
}
"""
    y = np.zeros(6, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 6), {"y": y})
    # body runs at least once: i == max(1, t)
    assert list(y) == [max(1, t) for t in range(6)]


def test_else_if_chain():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    if (t < 2) y[t] = 10;
    else if (t < 4) y[t] = 20;
    else y[t] = 30;
}
"""
    y = np.zeros(6, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 6), {"y": y})
    assert list(y) == [10, 10, 20, 20, 30, 30]

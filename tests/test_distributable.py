"""The Allgather distributable analysis: static verdicts and launch plans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_kernel, finalize_plan
from repro.analysis.metadata import Verdict
from repro.analysis.writes import collect_writes
from repro.frontend.parser import parse_kernel
from repro.interp import LaunchConfig

VEC_COPY = """
__global__ void vec_copy(const char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) dest[id] = src[id];
}
"""


def _analyze(src):
    return analyze_kernel(parse_kernel(src))


# ---------------------------------------------------------------------------
# static verdicts: accepted patterns
# ---------------------------------------------------------------------------
def test_listing1_metadata():
    a = _analyze(VEC_COPY)
    m = a.metadata
    assert m.distributable and m.tail_divergent
    assert m.mem_ptrs == ["dest"]
    assert m.elem_sizes["dest"] == 1
    # unit_size is symbolic: blockDim.x elements per block
    assert str(m.unit_elems["dest"]) == "ntid.x"
    assert "tail_divergent: True" in m.describe()


def test_early_return_form():
    a = _analyze(
        """
__global__ void k(const float *x, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id >= n) return;
    y[id] = x[id];
}
"""
    )
    assert a.metadata.distributable and a.metadata.tail_divergent


def test_thread_zero_reduction_output():
    a = _analyze(
        """
__global__ void k(float *out) {
    if (threadIdx.x == 0) out[blockIdx.x] = 1.0f;
}
"""
    )
    m = a.metadata
    assert m.distributable and not m.tail_divergent
    assert str(m.unit_elems["out"]) == "1"


def test_multi_element_per_thread():
    a = _analyze(
        """
__global__ void k(float *y) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    for (int j = 0; j < 4; j++) y[gid * 4 + j] = (float)j;
}
"""
    )
    assert a.metadata.distributable
    assert str(a.metadata.unit_elems["y"]) == "4*ntid.x"


def test_strided_two_stores_dense():
    a = _analyze(
        """
__global__ void k(float *y) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    y[gid * 2] = 0.0f;
    y[gid * 2 + 1] = 1.0f;
}
"""
    )
    assert a.metadata.distributable
    plan = finalize_plan(a, LaunchConfig.make(8, 32), {}, 2)
    assert not plan.replicated and plan.buffers[0].unit_elems == 64


def test_two_output_buffers():
    a = _analyze(
        """
__global__ void k(float *a, float *b, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) { a[id] = 1.0f; b[id] = 2.0f; }
}
"""
    )
    assert a.metadata.mem_ptrs == ["a", "b"]


def test_multiple_tail_guards_combine():
    a = _analyze(
        """
__global__ void k(float *y, int n, int m) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) {
        if (id < m) y[id] = 1.0f;
    }
}
"""
    )
    assert a.metadata.distributable and a.metadata.tail_divergent


# ---------------------------------------------------------------------------
# static verdicts: rejections (each with its paper category)
# ---------------------------------------------------------------------------
REJECTS = {
    "indirect write": (
        """
__global__ void k(const int *idx, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[idx[id]] = 1.0f;
}
""",
        "indirect or non-affine",
    ),
    "atomic": (
        """
__global__ void k(uint *bins, const uint *d, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) atomicAdd(&bins[(int)(d[id] % 16u)], 1u);
}
""",
        "atomic",
    ),
    "overlap: no block index": (
        "__global__ void k(float *y) { y[threadIdx.x] = 1.0f; }",
        "does not advance",
    ),
    "overlap: negative stride": (
        """
__global__ void k(float *y, int g) {
    y[(g - blockIdx.x) * blockDim.x + threadIdx.x] = 1.0f;
}
""",
        "non-positive coefficient",
    ),
    "nonlinear in thread index": (
        """
__global__ void k(float *y) {
    int t = threadIdx.x;
    y[blockIdx.x * blockDim.x + t * t] = 1.0f;
}
""",
        "nonlinear",
    ),
    "data-dependent guard": (
        """
__global__ void k(const float *x, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) { if (x[id] > 0.0f) y[id] = x[id]; }
}
""",
        "data-dependent",
    ),
    "block-variant guard": (
        """
__global__ void k(float *y) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (blockIdx.x < 4) y[id] = 1.0f;
}
""",
        "block-variant",
    ),
    "block-variant modulo guard": (
        # blockIdx.x % 2 is not affine, so the guard is unanalyzable
        """
__global__ void k(float *y) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (blockIdx.x % 2 == 0) y[id] = 1.0f;
}
""",
        "data-dependent",
    ),
    "write in while loop": (
        """
__global__ void k(float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    int i = 0;
    while (i < n) { y[id] = (float)i; i++; }
}
""",
        "while",
    ),
    "thread-variant loop trip": (
        """
__global__ void k(float *y) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    for (int i = 0; i < threadIdx.x; i++) y[id * 32 + i] = 1.0f;
}
""",
        "trip count",
    ),
    "loop with break": (
        """
__global__ void k(const float *x, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    for (int i = 0; i < 8; i++) {
        y[id * 8 + i] = 1.0f;
        if (x[i] > 0.0f) break;
    }
}
""",
        "trip count",
    ),
    "mixed rates to one buffer": (
        """
__global__ void k(float *y) {
    int t = threadIdx.x;
    y[blockIdx.x * blockDim.x + t] = 1.0f;
    y[blockIdx.x * 2 * blockDim.x + t] = 2.0f;
}
""",
        "different rates",
    ),
}


@pytest.mark.parametrize("label", list(REJECTS))
def test_rejections(label):
    src, reason_fragment = REJECTS[label]
    a = _analyze(src)
    assert not a.metadata.distributable, label
    assert any(reason_fragment in r for r in a.metadata.reasons), (
        label,
        a.metadata.reasons,
    )


def test_reads_are_unrestricted():
    # wild indirect strided reads are fine; only writes are analyzed
    a = _analyze(
        """
__global__ void k(const float *x, const int *idx, float *y, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = x[idx[id] * 37 + idx[id + 1]];
}
"""
    )
    assert a.metadata.distributable


# ---------------------------------------------------------------------------
# launch-time plans
# ---------------------------------------------------------------------------
def test_listing1_plan_matches_paper_walkthrough():
    """Paper section 4: 5 blocks, N=1200, 2 nodes -> blocks {0,1} on node
    0, {2,3} on node 1, block 4 is the callback block."""
    a = _analyze(VEC_COPY)
    plan = finalize_plan(a, LaunchConfig.make(5, 256), {"n": 1200}, 2)
    assert not plan.replicated
    assert plan.full_blocks == 4
    assert plan.p_size == 2
    assert list(plan.node_blocks(0)) == [0, 1]
    assert list(plan.node_blocks(1)) == [2, 3]
    assert list(plan.callback_blocks) == [4]
    bp = plan.buffers[0]
    assert bp.unit_elems == 256 and bp.base_elem == 0
    assert plan.comm_bytes == 4 * 256 * 1  # 4 executed blocks x 256 x 1B
    assert bp.node_slice(1, plan.p_size) == slice(512, 1024)


def test_kmeans_313_block_arithmetic():
    """Paper section 7.2's callback-block accounting."""
    a = _analyze(VEC_COPY)
    cfg = LaunchConfig.make(313, 256)
    n = 313 * 256  # no tail divergence triggered
    p16 = finalize_plan(a, cfg, {"n": n}, 16)
    assert p16.p_size == 19 and len(p16.callback_blocks) == 9
    p32 = finalize_plan(a, cfg, {"n": n}, 32)
    assert p32.p_size == 9 and len(p32.callback_blocks) == 25
    # per-node totals: 28 at 16 nodes vs 34 at 32 nodes (paper's numbers)
    assert p16.p_size + len(p16.callback_blocks) == 28
    assert p32.p_size + len(p32.callback_blocks) == 34


@given(
    blocks=st.integers(1, 40),
    tpb=st.sampled_from([4, 32, 256]),
    nodes=st.integers(1, 8),
    slack=st.integers(0, 3),
)
@settings(max_examples=60, deadline=None)
def test_plan_conservation(blocks, tpb, nodes, slack):
    """Every block is executed exactly once per consistency domain:
    partial blocks partition [0, p_size*nodes); the rest are callbacks."""
    a = _analyze(VEC_COPY)
    n = max(1, blocks * tpb - slack)
    plan = finalize_plan(a, LaunchConfig.make(blocks, tpb), {"n": n}, nodes)
    if plan.replicated:
        assert list(plan.callback_blocks) == list(range(blocks))
        return
    seen = []
    for r in range(nodes):
        seen.extend(plan.node_blocks(r))
    assert seen == list(range(plan.executed_blocks))
    assert list(plan.callback_blocks) == list(
        range(plan.executed_blocks, blocks)
    )
    # tail blocks (partially covered by the bound) are never in phase 1
    full = (n // tpb)
    assert plan.executed_blocks <= max(full, 0) + (1 if n % tpb == 0 else 0)


def test_tail_resolution_counts_partial_blocks():
    a = _analyze(VEC_COPY)
    # bound covers only half of block 3
    plan = finalize_plan(a, LaunchConfig.make(8, 100), {"n": 350}, 3)
    assert plan.full_blocks == 3
    assert plan.p_size == 1
    assert list(plan.callback_blocks) == [3, 4, 5, 6, 7]


def test_plan_single_node_is_replicated():
    a = _analyze(VEC_COPY)
    plan = finalize_plan(a, LaunchConfig.make(8, 32), {"n": 256}, 1)
    assert plan.replicated and plan.reason == "single node"


def test_plan_fewer_blocks_than_nodes():
    a = _analyze(VEC_COPY)
    plan = finalize_plan(a, LaunchConfig.make(2, 32), {"n": 64}, 4)
    assert plan.replicated and "fewer" in plan.reason


def test_plan_gap_footprint_rejected_at_launch():
    # every thread writes stride-2: the block footprint has gaps
    a = _analyze(
        """
__global__ void k(float *y) {
    y[(blockIdx.x * blockDim.x + threadIdx.x) * 2] = 1.0f;
}
"""
    )
    assert a.metadata.distributable  # statically plausible
    plan = finalize_plan(a, LaunchConfig.make(4, 32), {}, 2)
    assert plan.replicated and "dense" in plan.reason


def test_plan_multidim_grid_without_y_term_rejected():
    # vec_copy indexes by blockIdx.x only: on a 2-D grid, blocks along y
    # would write the same interval -> replicated fallback
    a = _analyze(VEC_COPY)
    from repro.interp.grid import LaunchConfig as LC

    plan = finalize_plan(a, LC.make((4, 2), 32), {"n": 256}, 2)
    assert plan.replicated and "overlap" in plan.reason


def test_write_records_collected():
    recs = collect_writes(parse_kernel(VEC_COPY))
    assert len(recs) == 1
    assert recs[0].buffer == "dest" and recs[0].elem_size == 1
    assert not recs[0].is_atomic and not recs[0].in_while


def test_loop_dependent_guard_footprint():
    """A guard over the loop variable shapes the footprint: dense only
    when the bound covers the whole stride — verified numerically at
    launch (falls back to replicated otherwise)."""
    src = """
__global__ void k(float *y, int kk) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    for (int j = 0; j < 8; j++) {
        if (j < kk) y[gid * 8 + j] = (float)j;
    }
}
"""
    a = _analyze(src)
    assert a.metadata.distributable  # statically plausible
    cfg = LaunchConfig.make(8, 32)
    full = finalize_plan(a, cfg, {"kk": 8}, 2)
    assert not full.replicated
    assert full.buffers[0].unit_elems == 8 * 32
    partial = finalize_plan(a, cfg, {"kk": 5}, 2)  # gaps in every block
    assert partial.replicated and "dense" in partial.reason


def test_guard_on_loop_variable_only_is_uniform():
    src = """
__global__ void k(float *y, int kk) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    for (int j = 0; j < 4; j++) {
        if (j * 2 < kk) y[gid * 4 + j] = 1.0f;
    }
}
"""
    a = _analyze(src)
    assert a.metadata.distributable
    # kk=8 covers all four j values -> dense
    plan = finalize_plan(a, LaunchConfig.make(4, 16), {"kk": 8}, 2)
    assert not plan.replicated

"""Grow recovery: rejoining nodes, workload rebalance, scheduler level.

After a crash shrinks the cluster, replacement nodes must be able to
rejoin: :func:`repro.ops.grow_cluster` restores the freed born
positions, replicates device state onto them (charging the broadcast to
the simulated clocks), and the next launch plans over the restored
width.  :func:`repro.ops.rebalance_workload` re-grids the workload onto
that width, idempotently.  At the batch-scheduler level,
``return_node`` / ``simulate_partition(return_times=...)`` model the
same recovery for requeued Slurm jobs.
"""

import numpy as np
import pytest

from repro.bench.harness import run_on_cucc
from repro.cluster import FaultPlan, make_cluster
from repro.ops import freed_positions, grow_cluster, rebalance_workload
from repro.slurm import Job, simulate_partition
from repro.transform.regrid import GID_PARAM, regrid_workload
from repro.workloads import fir


def _shrunk_runtime():
    spec = fir.build("small")
    res = run_on_cucc(
        spec,
        make_cluster("simd-focused", 4),
        fault_plan=FaultPlan.parse("crash:rank=1,phase=allgather", seed=3),
    )
    rt = res.runtime
    assert rt.cluster.num_nodes == 3
    return spec, res, rt


def test_grow_restores_freed_positions():
    spec, res, rt = _shrunk_runtime()
    assert freed_positions(rt.cluster) == (1,)
    before = max(n.clock.now for n in rt.cluster.nodes)
    grown = grow_cluster(rt)
    assert [n.born_rank for n in grown] == [1]
    assert [n.rank for n in rt.cluster.nodes] == [0, 1, 2, 3]
    assert freed_positions(rt.cluster) == ()
    # re-replication is charged to every simulated clock
    after = max(n.clock.now for n in rt.cluster.nodes)
    assert after > before
    # the rejoined replica is byte-identical to the survivors
    states = {(n, b): a for n, b, a in rt.memory.export_rank_states()}
    ref_born = rt.cluster.nodes[0].born_rank
    for name in ("coeff", "input", "output"):
        assert np.array_equal(states[(name, 1)], states[(name, ref_born)])


def test_grow_then_launch_uses_restored_width():
    spec, res, rt = _shrunk_runtime()
    grow_cluster(rt)
    compiled = rt.compile(spec.kernel)
    rec = rt.launch(compiled, spec.grid, spec.block, spec.args())
    assert rec.plan.num_nodes == 4
    assert len(rec.partial_counters) == 4
    out = rt.memory.memcpy_d2h("output", check_consistency=True)
    assert out.shape[0] == spec.arrays["output"].size


def test_grow_rejects_taken_position():
    from repro.errors import ClusterError

    _, _, rt = _shrunk_runtime()
    with pytest.raises(ClusterError, match="occupied position"):
        grow_cluster(rt, born_ranks=[0])


def test_rebalance_workload_regrids_to_width():
    spec, _, rt = _shrunk_runtime()
    re3 = rebalance_workload(spec, rt.cluster)
    assert re3 is not None and GID_PARAM in re3.scalars
    grow_cluster(rt)
    re4 = rebalance_workload(re3, rt.cluster)
    # idempotent: kernel untouched, only geometry recomputed
    assert re4.kernel is re3.kernel
    assert re4.scalars[GID_PARAM] == re3.scalars[GID_PARAM]
    assert re4.grid * re4.block >= re3.scalars[GID_PARAM]


def test_regrid_workload_idempotent_direct():
    spec = fir.build("small")
    r1 = regrid_workload(spec, 96)
    r2 = regrid_workload(r1, 96)
    assert (r2.grid, r2.block) == (r1.grid, r1.block)
    assert r2.kernel is r1.kernel


# -- scheduler-level grow recovery ------------------------------------------


def test_job_born_nodes_defaults():
    j = Job(submit_time=0.0, job_id=1, nodes=3, runtime_s=10.0,
            partition="p")
    assert j.born_nodes == 3


def test_return_node_reclaims_for_requeued_job():
    from repro.slurm.scheduler import PartitionScheduler

    sched = PartitionScheduler("p", 3)
    job = Job(submit_time=0.0, job_id=1, nodes=3, runtime_s=50.0,
              partition="p")
    sched.queue.append(job)
    sched.schedule(0.0)
    assert sched.fail_node(10.0) is job
    assert job.nodes == 2 and job.born_nodes == 3
    assert sched.return_node(20.0) is job
    assert job.nodes == 3
    # at born width already: the node joins the free pool
    assert sched.return_node(25.0) is None
    assert sched.num_nodes == 4


def test_simulate_partition_return_times_restore_width():
    # jobA short; jobB has the latest end so both failures kill it,
    # shrinking it to 1 node and leaving it queued.  Two returns grow
    # it back to its born width and let it start.
    def trace():
        return [
            Job(submit_time=0.0, job_id=0, nodes=1, runtime_s=50.0,
                partition="p"),
            Job(submit_time=0.0, job_id=1, nodes=2, runtime_s=200.0,
                partition="p"),
        ]

    done = simulate_partition(
        "p", 3, trace(), failure_times=[10.0, 11.0],
        return_times=[30.0, 40.0]
    )
    jb = next(j for j in done if j.job_id == 1)
    assert jb.requeues == 2
    assert jb.nodes == jb.born_nodes == 2
    assert jb.start_time == 40.0
    # without returns the same trace leaves the job shrunk and waiting
    done = simulate_partition("p", 3, trace(), failure_times=[10.0, 11.0])
    jb = next(j for j in done if j.job_id == 1)
    assert jb.nodes == 1 and jb.start_time == 50.0


def test_simulate_partition_returns_join_free_pool():
    """With no shrunk job waiting, a returned node adds plain capacity:
    a queued job starts at the return instead of the next completion."""
    jobs = [
        Job(submit_time=0.0, job_id=0, nodes=2, runtime_s=100.0,
            partition="p"),
        Job(submit_time=1.0, job_id=1, nodes=1, runtime_s=10.0,
            partition="p"),
    ]
    done = simulate_partition("p", 2, jobs, return_times=[5.0])
    j1 = next(j for j in done if j.job_id == 1)
    assert j1.start_time == 5.0 and j1.requeues == 0

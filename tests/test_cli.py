"""The ``python -m repro`` command-line driver."""

import pytest

from repro.cli import main

VEC = """
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) dest[id] = src[id];
}
"""


@pytest.fixture()
def cu_file(tmp_path):
    f = tmp_path / "k.cu"
    f.write_text(VEC)
    return str(f)


def test_analyze(cu_file, capsys):
    assert main(["analyze", cu_file]) == 0
    out = capsys.readouterr().out
    assert "vec_copy" in out and "yes" in out


def test_compile_with_plan(cu_file, capsys):
    rc = main(
        ["compile", cu_file, "--nodes", "2", "--grid", "5", "--block", "256",
         "--set", "n=1200"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "tail_divergent: True" in out
    assert "#pragma omp simd" in out
    assert "MPI_Allgather" in out
    assert "2 nodes x 2 blocks, 1 callback blocks" in out


def test_compile_plan_requires_block_and_nodes(cu_file, capsys):
    assert main(["compile", cu_file, "--grid", "5"]) == 1
    assert "requires" in capsys.readouterr().err


def test_run_workload(capsys):
    assert main(["run", "GA", "--nodes", "2", "--size", "small"]) == 0
    out = capsys.readouterr().out
    assert "verified on all 2 node replicas" in out


def test_run_workload_gpu(capsys):
    assert main(["run", "VecAdd", "--platform", "a100", "--size", "small"]) == 0
    assert "A100" in capsys.readouterr().out


def test_run_unknown_workload(capsys):
    assert main(["run", "nope"]) == 1
    assert "unknown workload" in capsys.readouterr().err


def test_specs(capsys):
    assert main(["specs"]) == 0
    out = capsys.readouterr().out
    assert "SIMD-Focused" in out and "4.15" in out


def test_missing_file(capsys):
    assert main(["analyze", "/definitely/not/here.cu"]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_tune_writes_cache_and_run_loads_it(tmp_path, capsys):
    cache = str(tmp_path / "tuning.json")
    assert main(["tune", "--nodes", "8", "--topology", "fat-tree",
                 "--cache", cache]) == 0
    out = capsys.readouterr().out
    assert "winner" in out and "0 new" not in out
    # second invocation finds every bucket already tuned
    assert main(["tune", "--nodes", "8", "--topology", "fat-tree",
                 "--cache", cache]) == 0
    assert "(0 new)" in capsys.readouterr().out
    assert main(["run", "FIR", "--nodes", "4", "--size", "small",
                 "--tuning", cache]) == 0
    out = capsys.readouterr().out
    assert "loaded" in out and "allgather" in out


def test_tune_custom_payloads(tmp_path, capsys):
    cache = str(tmp_path / "t.json")
    assert main(["tune", "--nodes", "4", "--payload", "4096",
                 "--payload", "65536", "--cache", cache]) == 0
    assert "wrote 2 entries (2 new)" in capsys.readouterr().out


def test_bench_delegation(capsys):
    assert main(["bench", "tab01"]) == 0
    assert "Table 1" in capsys.readouterr().out


# -- elastic operations: checkpoints, restart drill, drift guard -------------


def _drill(tmp_path, capsys):
    """Baseline checkpointed run + interrupted run; returns both dirs."""
    base = tmp_path / "base"
    inter = tmp_path / "int"
    faults = "crash:rank=1,phase=allgather"
    assert main(["run", "FIR", "--nodes", "4", "--faults", faults,
                 "--checkpoint", str(base)]) == 0
    rc = main(["run", "FIR", "--nodes", "4", "--faults", faults,
               "--checkpoint", str(inter), "--halt-after", "1"])
    out = capsys.readouterr().out
    assert rc == 3
    assert "halted" in out and ".rckp" in out
    return base, inter


def test_run_halt_resume_and_diff_clean(tmp_path, capsys):
    base, inter = _drill(tmp_path, capsys)
    rc = main(["run", "FIR", "--resume", str(inter),
               "--checkpoint", str(inter)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "resumed from" in out
    assert "verified on all 3 node replicas" in out
    assert main(["ckpt", "diff", str(base), str(inter)]) == 0
    assert "identical simulator state" in capsys.readouterr().out


def test_ckpt_inspect_and_validate(tmp_path, capsys):
    base, _ = _drill(tmp_path, capsys)
    assert main(["ckpt", "inspect", str(base)]) == 0
    out = capsys.readouterr().out
    assert "workload='FIR'" in out and "format v1" in out
    assert main(["ckpt", "validate", str(base)]) == 0
    assert ": ok" in capsys.readouterr().out


def test_ckpt_validate_flags_corruption(tmp_path, capsys):
    base, _ = _drill(tmp_path, capsys)
    victim = base / "latest.rckp"
    payload = bytearray(victim.read_bytes())
    payload[-1] ^= 0xFF
    victim.write_bytes(bytes(payload))
    assert main(["ckpt", "validate", str(victim)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_ckpt_diff_reports_differences(tmp_path, capsys):
    base, _ = _drill(tmp_path, capsys)
    other = tmp_path / "other"
    assert main(["run", "FIR", "--nodes", "4",
                 "--checkpoint", str(other)]) == 0
    capsys.readouterr()
    assert main(["ckpt", "diff", str(base), str(other)]) == 1
    assert "difference(s)" in capsys.readouterr().out


def test_ckpt_on_empty_directory(tmp_path, capsys):
    assert main(["ckpt", "inspect", str(tmp_path)]) == 1
    assert "no checkpoints" in capsys.readouterr().err


def test_run_recovery_exhausted_one_line_diagnosis(capsys):
    rc = main([
        "run", "FIR", "--nodes", "2",
        "--faults", "crash:rank=0,phase=allgather;crash:rank=1,phase=callback",
    ])
    err = capsys.readouterr().err
    assert rc == 1
    line = [l for l in err.splitlines() if l.startswith("error:")]
    assert len(line) == 1
    assert "unrecoverable" in line[0]


def test_run_halt_after_requires_checkpoint(capsys):
    assert main(["run", "FIR", "--halt-after", "1"]) == 1
    assert "--halt-after requires --checkpoint" in capsys.readouterr().err


def test_run_checkpoint_requires_cucc(capsys):
    assert main(["run", "FIR", "--platform", "a100",
                 "--checkpoint", "x"]) == 1
    assert "requires --platform cucc" in capsys.readouterr().err


def test_run_resume_rejects_faults(tmp_path, capsys):
    _, inter = _drill(tmp_path, capsys)
    rc = main(["run", "FIR", "--resume", str(inter),
               "--faults", "transient:op=1"])
    assert rc == 1
    assert "drop --faults" in capsys.readouterr().err


def test_run_drift_guard_flag(capsys):
    assert main(["run", "FIR", "--nodes", "4",
                 "--drift-guard", "0.25"]) == 0
    assert "verified" in capsys.readouterr().out


# -- serving: the multi-job queue driver -------------------------------------


def test_serve_mixed_queue_with_serial_check(tmp_path, capsys):
    trace = tmp_path / "serve-trace.json"
    rc = main([
        "serve", "--jobs", "6", "--rate", "2e6", "--nodes", "4",
        "--seed", "3", "--check-serial", "--trace", str(trace),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "pipelined mode, seed 3" in out
    assert "launches/sec" in out and "p99" in out
    assert "serial-identity check passed" in out
    assert trace.exists() and "job_id" in trace.read_text()


def test_serve_warm_jit_cache_zero_recompiles(tmp_path, capsys):
    from repro.interp.jit.executor import clear_memo

    cache = str(tmp_path / "serve-jit.json")
    args = ["serve", "--jobs", "5", "--nodes", "4", "--backend", "jit",
            "--jit-cache", cache]
    clear_memo()
    assert main(args) == 0
    assert "saved CompileCache" in capsys.readouterr().out
    clear_memo()  # second service run must be fed by the on-disk cache
    assert main(args) == 0
    assert "compiles=0 " in capsys.readouterr().out


def test_serve_no_pipeline_and_fault_isolation(capsys):
    rc = main([
        "serve", "--jobs", "6", "--nodes", "4", "--no-pipeline",
        "--faults", "crash:rank=1,phase=allgather", "--fault-every", "3",
        "--check-serial",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "concurrent mode" in out
    assert "serial-identity check passed" in out
    assert "6 ok, 0 failed" in out  # faulted jobs recovered in isolation


def test_serve_rejects_bad_mix(capsys):
    assert main(["serve", "--mix", "NoSuchKernel:1", "--jobs", "2"]) == 1
    assert "unknown workload" in capsys.readouterr().err

"""The ``python -m repro`` command-line driver."""

import pytest

from repro.cli import main

VEC = """
__global__ void vec_copy(char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) dest[id] = src[id];
}
"""


@pytest.fixture()
def cu_file(tmp_path):
    f = tmp_path / "k.cu"
    f.write_text(VEC)
    return str(f)


def test_analyze(cu_file, capsys):
    assert main(["analyze", cu_file]) == 0
    out = capsys.readouterr().out
    assert "vec_copy" in out and "yes" in out


def test_compile_with_plan(cu_file, capsys):
    rc = main(
        ["compile", cu_file, "--nodes", "2", "--grid", "5", "--block", "256",
         "--set", "n=1200"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "tail_divergent: True" in out
    assert "#pragma omp simd" in out
    assert "MPI_Allgather" in out
    assert "2 nodes x 2 blocks, 1 callback blocks" in out


def test_compile_plan_requires_block_and_nodes(cu_file, capsys):
    assert main(["compile", cu_file, "--grid", "5"]) == 1
    assert "requires" in capsys.readouterr().err


def test_run_workload(capsys):
    assert main(["run", "GA", "--nodes", "2", "--size", "small"]) == 0
    out = capsys.readouterr().out
    assert "verified on all 2 node replicas" in out


def test_run_workload_gpu(capsys):
    assert main(["run", "VecAdd", "--platform", "a100", "--size", "small"]) == 0
    assert "A100" in capsys.readouterr().out


def test_run_unknown_workload(capsys):
    assert main(["run", "nope"]) == 1
    assert "unknown workload" in capsys.readouterr().err


def test_specs(capsys):
    assert main(["specs"]) == 0
    out = capsys.readouterr().out
    assert "SIMD-Focused" in out and "4.15" in out


def test_missing_file(capsys):
    assert main(["analyze", "/definitely/not/here.cu"]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_tune_writes_cache_and_run_loads_it(tmp_path, capsys):
    cache = str(tmp_path / "tuning.json")
    assert main(["tune", "--nodes", "8", "--topology", "fat-tree",
                 "--cache", cache]) == 0
    out = capsys.readouterr().out
    assert "winner" in out and "0 new" not in out
    # second invocation finds every bucket already tuned
    assert main(["tune", "--nodes", "8", "--topology", "fat-tree",
                 "--cache", cache]) == 0
    assert "(0 new)" in capsys.readouterr().out
    assert main(["run", "FIR", "--nodes", "4", "--size", "small",
                 "--tuning", cache]) == 0
    out = capsys.readouterr().out
    assert "loaded" in out and "allgather" in out


def test_tune_custom_payloads(tmp_path, capsys):
    cache = str(tmp_path / "t.json")
    assert main(["tune", "--nodes", "4", "--payload", "4096",
                 "--payload", "65536", "--cache", cache]) == 0
    assert "wrote 2 entries (2 new)" in capsys.readouterr().out


def test_bench_delegation(capsys):
    assert main(["bench", "tab01"]) == 0
    assert "Table 1" in capsys.readouterr().out

"""Coverage kernel zoos (Figure 7): verdicts, and functional spot checks."""

import numpy as np
import pytest

from repro.analysis import analyze_kernel
from repro.frontend.parser import parse_kernel
from repro.interp import LaunchConfig, run_grid
from repro.ir import validate_kernel
from repro.workloads.ai_models import AI_KERNELS, BERT_KERNELS, VIT_KERNELS
from repro.workloads.heteromark import HETEROMARK_KERNELS, build_kernel

ALL_ZOO = HETEROMARK_KERNELS + AI_KERNELS


def test_zoo_sizes_match_paper():
    assert len(BERT_KERNELS) == 12
    assert len(VIT_KERNELS) == 9
    assert len(HETEROMARK_KERNELS) == 13


@pytest.mark.parametrize("z", ALL_ZOO, ids=lambda z: z.name)
def test_zoo_kernels_parse_and_validate(z):
    k = build_kernel(z)
    validate_kernel(k)
    assert k.name == z.name


@pytest.mark.parametrize("z", ALL_ZOO, ids=lambda z: z.name)
def test_zoo_verdicts_match_paper(z):
    a = analyze_kernel(build_kernel(z))
    assert a.metadata.distributable == z.distributable, a.metadata.reasons


def test_figure7_totals():
    ai_ok = sum(
        analyze_kernel(build_kernel(z)).metadata.distributable
        for z in AI_KERNELS
    )
    hm_ok = sum(
        analyze_kernel(build_kernel(z)).metadata.distributable
        for z in HETEROMARK_KERNELS
    )
    assert ai_ok == 21  # paper: all 21 AI kernels
    assert hm_ok == 8  # paper: 8 of 13 Hetero-Mark kernels
    cats = [z.category for z in HETEROMARK_KERNELS if not z.distributable]
    assert sorted(cats) == ["indirect"] + ["overlap"] * 4


# ---------------------------------------------------------------------------
# functional spot checks: zoo kernels are real programs, not just strings
# ---------------------------------------------------------------------------
def _zoo(name):
    return build_kernel(next(z for z in ALL_ZOO if z.name == name))


def test_black_scholes_executes():
    from scipy.special import erf

    k = _zoo("black_scholes")
    n = 64
    rng = np.random.default_rng(0)
    spot = (80 + 40 * rng.random(n)).astype(np.float32)
    strike = (80 + 40 * rng.random(n)).astype(np.float32)
    texp = (0.1 + rng.random(n)).astype(np.float32)
    call = np.zeros(n, dtype=np.float32)
    put = np.zeros(n, dtype=np.float32)
    run_grid(
        k,
        LaunchConfig.make(1, 64),
        {"spot": spot, "strike": strike, "texp": texp, "call": call,
         "put": put, "rate": 0.02, "vol": 0.3, "n": n},
    )
    # put-call parity: C - P = S - K * exp(-rT)
    parity = spot - strike * np.exp(-0.02 * texp)
    assert np.allclose(call - put, parity, rtol=1e-3, atol=1e-3)
    assert np.all(call >= -1e-4) and np.all(put >= -1e-4)


def test_histogram_zoo_executes():
    k = _zoo("histogram")
    n, nbins = 512, 16
    data = np.random.default_rng(1).integers(0, 1 << 20, n).astype(np.uint32)
    bins = np.zeros(nbins, dtype=np.uint32)
    run_grid(k, LaunchConfig.make(2, 256),
             {"data": data, "bins": bins, "nbins": nbins, "n": n})
    assert np.array_equal(bins, np.bincount(data % nbins, minlength=nbins))


def test_softmax_zoo_executes():
    k = _zoo("bert_softmax")
    rows, width = 4, 100
    x = np.random.default_rng(2).standard_normal((rows, width)).astype(np.float32)
    y = np.zeros(rows * width, dtype=np.float32)
    run_grid(k, LaunchConfig.make(rows, 128),
             {"scores": x.reshape(-1).copy(), "probs": y, "width": width})
    got = y.reshape(rows, width)
    e = np.exp(x - x.max(axis=1, keepdims=True))
    ref = e / e.sum(axis=1, keepdims=True)
    assert np.allclose(got, ref, rtol=1e-4, atol=1e-5)


def test_layernorm_zoo_executes():
    k = _zoo("vit_layernorm")
    rows, width = 3, 64
    rng = np.random.default_rng(3)
    x = rng.standard_normal((rows, width)).astype(np.float32)
    gamma = rng.standard_normal(width).astype(np.float32)
    beta = rng.standard_normal(width).astype(np.float32)
    y = np.zeros(rows * width, dtype=np.float32)
    run_grid(
        k,
        LaunchConfig.make(rows, 64),
        {"x": x.reshape(-1).copy(), "gamma": gamma, "beta": beta, "y": y,
         "width": width, "eps": 1e-5},
    )
    mu = x.mean(axis=1, keepdims=True)
    var = ((x - mu) ** 2).mean(axis=1, keepdims=True)
    ref = (x - mu) / np.sqrt(var + 1e-5) * gamma + beta
    assert np.allclose(y.reshape(rows, width), ref, rtol=1e-3, atol=1e-3)


def test_pagerank_push_zoo_executes():
    k = _zoo("pagerank_push")
    # tiny 4-vertex graph in CSR
    row_ptr = np.array([0, 2, 3, 4, 6], dtype=np.int32)
    col_idx = np.array([1, 2, 2, 3, 0, 1], dtype=np.int32)
    out_deg = np.diff(row_ptr).astype(np.int32)
    rank = np.array([0.25] * 4, dtype=np.float32)
    nxt = np.zeros(4, dtype=np.float32)
    run_grid(
        k,
        LaunchConfig.make(1, 4),
        {"col_idx": col_idx, "row_ptr": row_ptr, "rank": rank,
         "next_rank": nxt, "out_degree": out_deg, "nvertices": 4},
    )
    ref = np.zeros(4, dtype=np.float32)
    for v in range(4):
        share = rank[v] / out_deg[v]
        for e in range(row_ptr[v], row_ptr[v + 1]):
            ref[col_idx[e]] += share
    assert np.allclose(nxt, ref, rtol=1e-6)
    assert nxt.sum() == pytest.approx(1.0, rel=1e-5)


def test_aes_sbox_zoo_executes():
    k = _zoo("aes_encrypt")
    nstates = 8
    rng = np.random.default_rng(4)
    inp = rng.integers(0, 256, nstates * 16).astype(np.uint8)
    sbox = rng.permutation(256).astype(np.uint8)
    out = np.zeros(nstates * 16, dtype=np.uint8)
    run_grid(k, LaunchConfig.make(1, 32),
             {"input": inp, "sbox": sbox, "output": out, "nstates": nstates})
    assert np.array_equal(out, sbox[inp])


def test_be_extract_zoo_executes():
    k = _zoo("be_extract")
    n = 128
    rng = np.random.default_rng(7)
    frame = rng.random(n).astype(np.float32)
    bg = rng.random(n).astype(np.float32)
    bg0 = bg.copy()
    fg = np.zeros(n, dtype=np.uint8)
    run_grid(k, LaunchConfig.make(1, 128),
             {"frame": frame, "background": bg, "foreground": fg,
              "alpha": np.float32(0.1), "thresh": np.float32(0.3),
              "npixels": n})
    assert np.array_equal(fg, (np.abs(frame - bg0) > 0.3).astype(np.uint8) * 255)
    assert np.allclose(bg, 0.9 * bg0 + 0.1 * frame, rtol=1e-6)


def test_ep_evaluate_zoo_executes():
    k = _zoo("ep_evaluate")
    n, glen = 32, 4
    rng = np.random.default_rng(8)
    genomes = rng.standard_normal(n * glen).astype(np.float32)
    fitness = np.zeros(n, dtype=np.float32)
    run_grid(k, LaunchConfig.make(1, 32),
             {"genomes": genomes, "fitness": fitness, "genome_len": glen,
              "n": n})
    g = genomes.reshape(n, glen)
    ref = (g * g - 10 * np.cos(2 * np.pi * g) + 10).astype(np.float32)
    # rastrigin per gene, accumulated in order
    acc = np.zeros(n, dtype=np.float32)
    for j in range(glen):
        term = (g[:, j] * g[:, j]
                - np.float32(10.0) * np.cos(np.float32(2 * np.pi) * g[:, j])
                + np.float32(10.0)).astype(np.float32)
        acc += term
    assert np.allclose(fitness, acc, rtol=1e-4, atol=1e-4)


def test_kmeans_update_zoo_executes():
    k = _zoo("kmeans_update")
    npoints, nclusters, nfeatures = 40, 3, 2
    rng = np.random.default_rng(9)
    x = rng.random((nfeatures, npoints)).astype(np.float32)
    member = rng.integers(0, nclusters, npoints).astype(np.int32)
    sums = np.zeros(nfeatures * nclusters, dtype=np.float32)
    counts = np.zeros(nclusters, dtype=np.int32)
    run_grid(k, LaunchConfig.make(2, 32),
             {"x": x.reshape(-1).copy(), "membership": member,
              "centroid_sums": sums, "centroid_counts": counts,
              "npoints": npoints, "nclusters": nclusters,
              "nfeatures": nfeatures})
    assert np.array_equal(counts, np.bincount(member, minlength=nclusters))
    for c in range(nclusters):
        for j in range(nfeatures):
            assert sums[j * nclusters + c] == pytest.approx(
                x[j, member == c].sum(), rel=1e-4
            )

"""Guard classification (condition 2 of the distributable analysis)."""

import pytest

from repro.analysis.affine import Poly, eval_sym
from repro.analysis.guards import (
    Guard,
    GuardKind,
    classify_guard,
    guards_of_condition,
    negate_conjunction,
)
from repro.errors import AnalysisError
from repro.ir import I32, IRBuilder
from repro.ir.expr import Param, UnOp, Var, const


def _b():
    b = IRBuilder("t")
    return b


def _gid(b):
    return b.bid_x * b.bdim_x + b.tid_x


def test_uniform_guard():
    b = _b()
    n = b.scalar_param("n", I32)
    g = classify_guard(n > 100, {})
    assert g.kind is GuardKind.UNIFORM


def test_thread_symmetric_guards():
    b = _b()
    assert classify_guard(b.tid_x.eq(0), {}).kind is GuardKind.THREAD_SYMMETRIC
    assert classify_guard(b.tid_x < 128, {}).kind is GuardKind.THREAD_SYMMETRIC
    assert (
        classify_guard(b.tid_x < b.bdim_x - 1, {}).kind
        is GuardKind.THREAD_SYMMETRIC
    )


def test_tail_guard():
    b = _b()
    n = b.scalar_param("n", I32)
    g = classify_guard(_gid(b) < n, {})
    assert g.kind is GuardKind.TAIL
    assert g.rel == "lt"
    # <= also works
    g2 = classify_guard(_gid(b) <= n - 1, {})
    assert g2.kind is GuardKind.TAIL


def test_guarded_return_negates_to_tail():
    b = _b()
    n = b.scalar_param("n", I32)
    g = classify_guard(_gid(b) >= n, {})
    assert g.kind is GuardKind.BLOCK_VARIANT  # the overflow side
    assert g.negated().kind is GuardKind.TAIL  # code after `return`


def test_block_variant_guards():
    b = _b()
    assert classify_guard(b.bid_x.eq(0), {}).kind is GuardKind.BLOCK_VARIANT
    # negative thread coefficient is not tail-shaped
    n = b.scalar_param("n", I32)
    g = classify_guard(n - b.tid_x - b.bid_x * b.bdim_x < 0, {})
    assert g.kind is GuardKind.BLOCK_VARIANT


def test_opaque_guard():
    b = _b()
    buf = b.pointer_param("x", I32)
    g = classify_guard(b.load(buf, b.tid_x) > 0, {})
    assert g.kind is GuardKind.OPAQUE
    assert g.poly is None
    assert g.negated().kind is GuardKind.OPAQUE


def test_guard_evaluate():
    b = _b()
    g = classify_guard(b.tid_x < 3, {})
    import numpy as np

    out = g.evaluate({"tid.x": np.arange(6)})
    assert list(out) == [True] * 3 + [False] * 3


def test_opaque_evaluate_raises():
    with pytest.raises(AnalysisError):
        Guard(GuardKind.OPAQUE).evaluate({})


def test_negation_roundtrip_truth():
    """Negating twice preserves the truth set (checked numerically)."""
    import numpy as np

    b = _b()
    n = b.scalar_param("n", I32)
    for cond in (_gid(b) < n, b.tid_x.eq(0), b.tid_x >= 7, b.tid_x.ne(2)):
        g = classify_guard(cond, {})
        gg = g.negated().negated()
        vals = {
            "tid.x": np.arange(10),
            "ctaid.x": 2,
            "ntid.x": 10,
            "param:n": 25,
        }
        assert np.array_equal(g.evaluate(vals), gg.evaluate(vals))
        assert np.array_equal(g.evaluate(vals), ~g.negated().evaluate(vals))


def test_conjunction_decomposition():
    b = _b()
    n = b.scalar_param("n", I32)
    cond = (b.tid_x < 64).logical_and(_gid(b) < n)
    gs = guards_of_condition(cond, {})
    kinds = sorted(g.kind.value for g in gs)
    assert kinds == ["tail-divergent", "thread-symmetric"]


def test_disjunction_folds_to_worst():
    b = _b()
    n = b.scalar_param("n", I32)
    gs = guards_of_condition((b.tid_x < 4).logical_or(_gid(b) < n), {})
    assert len(gs) == 1
    assert gs[0].kind is GuardKind.BLOCK_VARIANT  # tail degrades under "or"
    gs2 = guards_of_condition((b.tid_x < 4).logical_or(b.tid_x > 200), {})
    assert gs2[0].kind is GuardKind.THREAD_SYMMETRIC


def test_negate_conjunction():
    b = _b()
    n = b.scalar_param("n", I32)
    single = guards_of_condition(_gid(b) >= n, {})
    neg = negate_conjunction(single)
    assert len(neg) == 1 and neg[0].kind is GuardKind.TAIL
    multi = guards_of_condition((b.tid_x < 4).logical_and(_gid(b) < n), {})
    neg2 = negate_conjunction(multi)
    assert len(neg2) == 1
    assert neg2[0].kind in (GuardKind.BLOCK_VARIANT, GuardKind.OPAQUE)


def test_not_operator():
    b = _b()
    g = classify_guard(UnOp("!", b.tid_x < 5), {})
    assert g.kind is GuardKind.THREAD_SYMMETRIC
    import numpy as np

    assert list(g.evaluate({"tid.x": np.arange(8)})) == [False] * 5 + [True] * 3


def test_truthy_value_condition():
    b = _b()
    n = b.scalar_param("flag", I32)
    g = classify_guard(n, {})
    assert g.kind is GuardKind.UNIFORM and g.rel == "ne"

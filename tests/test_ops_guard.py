"""Drift-guarded execution: escalation ladder and the breaker.

In the simulator the executed phase times normally *are* the model's
predictions (zero drift), so the tests manufacture real drift with a
straggler fault: the compute multiplier inflates the executed partial
phase while the prediction is built from unscaled counters.
"""

import pytest

from repro.bench.harness import run_on_cucc
from repro.cluster import FaultPlan, make_cluster
from repro.errors import DriftBreakerOpen
from repro.ops import DriftGuardPolicy
from repro.ops.guard import DriftGuard
from repro.workloads import fir


def _drifting_runtime(policy):
    spec = fir.build("small")
    res = run_on_cucc(
        spec,
        make_cluster("simd-focused", 4),
        fault_plan=FaultPlan.parse("straggler:rank=3,compute=3.0"),
        drift_guard=policy,
    )
    return spec, res.runtime


@pytest.mark.parametrize(
    "kwargs, msg",
    [
        (dict(bound=0.0), "bound"),
        (dict(warn_after=0), "warn_after"),
        (dict(retune_after=0), "retune_after"),
        (dict(refuse_after=0), "refuse_after"),
        (dict(warn_after=3, retune_after=2), "warn_after"),
        (dict(retune_after=5, refuse_after=4), "retune_after"),
    ],
)
def test_policy_validation(kwargs, msg):
    with pytest.raises(ValueError, match=msg):
        DriftGuardPolicy(**kwargs)


def test_guard_implies_drift_telemetry():
    _, rt = _drifting_runtime(DriftGuardPolicy(bound=1e9))
    assert rt.drift is True
    assert rt.guard is not None and not rt.guard.open


def test_escalation_warn_retune_open():
    policy = DriftGuardPolicy(
        bound=1e-9, warn_after=1, retune_after=2, refuse_after=3
    )
    spec, rt = _drifting_runtime(policy)
    compiled = rt.compile(spec.kernel)
    # launch 1 drifted: warn.  launches 2 and 3 escalate.
    assert [e["action"] for e in rt.guard.log] == ["warn"]
    rt.launch(compiled, spec.grid, spec.block, spec.args())
    assert rt.guard.retunes == 1 and not rt.guard.open
    rt.launch(compiled, spec.grid, spec.block, spec.args())
    assert rt.guard.open
    with pytest.raises(DriftBreakerOpen, match="drift"):
        rt.launch(compiled, spec.grid, spec.block, spec.args())


def test_breach_streak_resets_on_accurate_launch():
    guard = DriftGuard(DriftGuardPolicy(bound=0.5, refuse_after=5))
    guard.consecutive = 3
    pred = {"partial": 1.0, "allgather": 1.0}

    class _Ph:
        partial = 1.0
        allgather = 1.0

    class _Rec:
        phases = _Ph()

    guard.observe(None, "k", _Rec(), pred)
    assert guard.consecutive == 0 and not guard.open


def test_forced_retune_fires_exactly_once_per_streak():
    policy = DriftGuardPolicy(
        bound=1e-9, warn_after=1, retune_after=1, refuse_after=99
    )
    spec, rt = _drifting_runtime(policy)
    compiled = rt.compile(spec.kernel)
    assert rt.guard.retunes == 1
    rt.launch(compiled, spec.grid, spec.block, spec.args())
    rt.launch(compiled, spec.grid, spec.block, spec.args())
    assert rt.guard.retunes == 1  # same streak: no repeat retune


def test_in_bound_run_never_trips():
    spec = fir.build("small")
    res = run_on_cucc(
        spec,
        make_cluster("simd-focused", 4),
        drift_guard=DriftGuardPolicy(bound=0.25),
    )
    g = res.runtime.guard
    assert g.consecutive == 0 and g.log == [] and not g.open

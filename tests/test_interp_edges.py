"""Interpreter edge cases: non-contiguous spans, nested while, atomics,
intrinsics, and dtype corners."""

import numpy as np
import pytest

from repro.errors import InterpError
from repro.frontend.parser import parse_kernel
from repro.interp import BlockExecutor, LaunchConfig, OpCounters, run_grid


def test_non_contiguous_block_ids_in_span():
    src = """
__global__ void mark(int *y) {
    y[blockIdx.x * blockDim.x + threadIdx.x] = blockIdx.x;
}
"""
    k = parse_kernel(src)
    y = np.full(8 * 4, -1, dtype=np.int32)
    ex = BlockExecutor(k, LaunchConfig.make(8, 4), {"y": y})
    ex.run_blocks([1, 5, 2], span=3)  # one span, holes in the id set
    done = y.reshape(8, 4)
    for b in range(8):
        expect = b if b in (1, 5, 2) else -1
        assert np.all(done[b] == expect), b


def test_nested_while_loops():
    src = """
__global__ void collatz_steps(const int *x, int *steps, int n) {
    int g = threadIdx.x;
    if (g >= n) return;
    int v = x[g];
    int count = 0;
    while (v != 1) {
        while (v % 2 == 0) {
            v = v / 2;
            count++;
        }
        if (v != 1) {
            v = 3 * v + 1;
            count++;
        }
    }
    steps[g] = count;
}
"""
    x = np.array([1, 2, 3, 6, 7, 27], dtype=np.int32)
    steps = np.zeros(6, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8),
             {"x": x, "steps": steps, "n": 6})

    def collatz(v):
        c = 0
        while v != 1:
            v, c = (v // 2, c + 1) if v % 2 == 0 else (3 * v + 1, c + 1)
        return c

    assert list(steps) == [collatz(int(v)) for v in x]


def test_while_with_break_per_lane():
    src = """
__global__ void k(int *y) {
    int t = threadIdx.x;
    int i = 0;
    while (true) {
        if (i >= t) break;
        i++;
    }
    y[t] = i;
}
"""
    y = np.zeros(8, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8), {"y": y})
    assert list(y) == list(range(8))


def test_atomic_sub_and_exch():
    src = """
__global__ void k(int *a, int *b) {
    atomicSub(&a[0], 2);
    atomicExch(&b[threadIdx.x], threadIdx.x + 100);
}
"""
    a = np.array([100], dtype=np.int32)
    b = np.zeros(4, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 4), {"a": a, "b": b})
    assert a[0] == 100 - 2 * 4
    assert list(b) == [100, 101, 102, 103]


def test_float_intrinsics_values():
    src = """
__global__ void k(float *y) {
    y[0] = logf(expf(2.0f));
    y[1] = powf(3.0f, 2.0f);
    y[2] = floorf(2.7f) + ceilf(2.2f);
    y[3] = rsqrtf(4.0f);
    y[4] = fmodf(7.5f, 2.0f);
    y[5] = tanhf(0.0f);
    y[6] = exp2f(3.0f) + log2f(8.0f);
}
"""
    y = np.zeros(8, dtype=np.float32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 1), {"y": y})
    assert y[0] == pytest.approx(2.0, rel=1e-6)
    assert y[1] == 9.0
    assert y[2] == 5.0
    assert y[3] == 0.5
    assert y[4] == 1.5
    assert y[5] == 0.0
    assert y[6] == 11.0


def test_division_by_zero_on_inactive_lanes_is_safe():
    src = """
__global__ void k(const int *d, float *y, int n) {
    int t = threadIdx.x;
    if (d[t] != 0) y[t] = 100.0f / (float)d[t];
    if (d[t] != 0) y[t] += (float)(1000 / d[t]);
}
"""
    d = np.array([2, 0, 4, 0], dtype=np.int32)
    y = np.zeros(4, dtype=np.float32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 4),
             {"d": d, "y": y, "n": 4})
    assert y[0] == 50.0 + 500.0 and y[2] == 25.0 + 250.0
    assert y[1] == 0.0 and y[3] == 0.0


def test_char_arithmetic_wraps():
    src = """
__global__ void k(char *y) {
    char v = (char)120;
    y[threadIdx.x] = v + (char)20;  // wraps in int8
}
"""
    y = np.zeros(2, dtype=np.int8)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 2), {"y": y})
    # C promotes to int for the add; the store truncates to int8
    assert y[0] == np.int8(140 - 256)


def test_bool_condition_from_int():
    src = """
__global__ void k(int *y, int flag) {
    if (flag) y[threadIdx.x] = 1;
    else y[threadIdx.x] = 2;
}
"""
    y = np.zeros(2, dtype=np.int32)
    run_grid(parse_kernel(src), LaunchConfig.make(1, 2), {"y": y, "flag": 7})
    assert list(y) == [1, 1]
    run_grid(parse_kernel(src), LaunchConfig.make(1, 2), {"y": y, "flag": 0})
    assert list(y) == [2, 2]


def test_runaway_while_loop_capped():
    import repro.interp.machine as m

    old = m.MAX_LOOP_ITERS
    m.MAX_LOOP_ITERS = 100
    try:
        src = "__global__ void k(int *y) { while (true) { y[0] = 1; } }"
        with pytest.raises(InterpError, match="exceeded"):
            run_grid(parse_kernel(src), LaunchConfig.make(1, 1),
                     {"y": np.zeros(1, np.int32)})
    finally:
        m.MAX_LOOP_ITERS = old


def test_counters_shared_and_local_bytes():
    src = """
__global__ void k(float *y) {
    __shared__ float s[8];
    float l[2];
    s[threadIdx.x] = 1.0f;
    l[0] = s[threadIdx.x];
    y[threadIdx.x] = l[0];
}
"""
    c = OpCounters()
    run_grid(parse_kernel(src), LaunchConfig.make(1, 8),
             {"y": np.zeros(8, np.float32)}, counters=c)
    assert c.shared_bytes == 8 * 4 * 2  # one store + one load
    assert c.local_bytes == 8 * 4 * 2
    assert c.global_store_bytes == 8 * 4

"""The eight evaluation workloads: correctness on every platform,
analysis verdicts, and per-workload structural facts."""

import numpy as np
import pytest

from repro.analysis import analyze_kernel, finalize_plan
from repro.bench.harness import run_on_cucc, run_on_gpu, run_on_pgas
from repro.cluster import Cluster
from repro.hw import A100, SIMD_FOCUSED_NODE, THREAD_FOCUSED_NODE
from repro.interp import LaunchConfig
from repro.transform import analyze_vectorizability
from repro.workloads import EXTRA_WORKLOADS, PERF_WORKLOADS

ALL = {**PERF_WORKLOADS, **EXTRA_WORKLOADS}


@pytest.mark.parametrize("name", list(ALL))
def test_expected_analysis_verdicts(name):
    spec = ALL[name]("small")
    a = analyze_kernel(spec.kernel)
    v = analyze_vectorizability(spec.kernel)
    assert a.metadata.distributable == spec.expect_distributable, (
        name,
        a.metadata.reasons,
    )
    assert v.vectorizable == spec.expect_vectorizable, (name, v.reasons)


@pytest.mark.parametrize("name", list(ALL))
def test_gpu_execution_matches_reference(name):
    run_on_gpu(ALL[name]("small"), A100)  # verify=True raises on mismatch


@pytest.mark.parametrize("name", list(ALL))
@pytest.mark.parametrize("nodes", [2, 4])
def test_cucc_cluster_matches_reference(name, nodes):
    res = run_on_cucc(
        ALL[name]("small"),
        Cluster(SIMD_FOCUSED_NODE, nodes),
        faithful_replication=True,
    )
    assert not res.record.plan.replicated


@pytest.mark.parametrize("name", list(PERF_WORKLOADS))
def test_cucc_thread_cluster_matches_reference(name):
    run_on_cucc(
        PERF_WORKLOADS[name]("small"), Cluster(THREAD_FOCUSED_NODE, 3)
    )


@pytest.mark.parametrize("name", list(PERF_WORKLOADS))
def test_pgas_matches_reference(name):
    run_on_pgas(PERF_WORKLOADS[name]("small"), Cluster(SIMD_FOCUSED_NODE, 3))


@pytest.mark.parametrize("name", list(ALL))
def test_different_seeds_give_different_data(name):
    a = ALL[name]("small", seed=0)
    b = ALL[name]("small", seed=1)
    some_input = next(
        n for n in a.arrays if n not in a.outputs
    )
    assert not np.array_equal(a.arrays[some_input], b.arrays[some_input])


def test_unknown_size_rejected():
    from repro.errors import ReproError

    for name in ALL:
        with pytest.raises(ReproError):
            ALL[name]("gigantic")


# ---------------------------------------------------------------------------
# structural facts from the paper
# ---------------------------------------------------------------------------
def test_kmeans_has_313_blocks():
    spec = PERF_WORKLOADS["KMeans"]("paper")
    assert spec.num_blocks == 313  # section 7.2


def test_binomial_has_1024_blocks_and_scalar_output():
    spec = PERF_WORKLOADS["BinomialOption"]("paper")
    assert spec.num_blocks == 1024  # section 8.2
    a = analyze_kernel(spec.kernel)
    assert str(a.metadata.unit_elems["value"]) == "1"  # one scalar per block


def test_ep_and_ga_block_counts():
    assert PERF_WORKLOADS["EP"]("paper").num_blocks == 512  # section 7.4.1
    assert PERF_WORKLOADS["GA"]("paper").num_blocks == 256


def test_transpose_write_is_dense_rows():
    spec = PERF_WORKLOADS["Transpose"]("small")
    a = analyze_kernel(spec.kernel)
    plan = finalize_plan(
        a,
        LaunchConfig.make(spec.grid, spec.block),
        spec.scalars,
        2,
    )
    assert not plan.replicated
    dim = spec.scalars["dim"]
    assert plan.buffers[0].unit_elems == dim  # one output row per block


def test_tail_divergence_flags():
    tails = {
        name: analyze_kernel(ALL[name]("small").kernel).metadata.tail_divergent
        for name in ALL
    }
    assert tails["FIR"] and tails["KMeans"] and tails["EP"] and tails["VecAdd"]
    assert not tails["Transpose"] and not tails["MatMul"]
    # GA/Binomial write under threadIdx == 0, not under the bound check
    assert not tails["BinomialOption"] and not tails["GA"]


def test_kmeans_membership_values_in_range():
    spec = PERF_WORKLOADS["KMeans"]("small")
    res = run_on_cucc(spec, Cluster(SIMD_FOCUSED_NODE, 2))
    out = res.runtime.memory.memcpy_d2h("membership")
    assert out.min() >= 0 and out.max() < spec.scalars["nclusters"]


def test_ga_counts_nonnegative_and_some_matches():
    spec = PERF_WORKLOADS["GA"]("small")
    res = run_on_cucc(spec, Cluster(SIMD_FOCUSED_NODE, 2))
    out = res.runtime.memory.memcpy_d2h("block_matches")
    assert out.min() >= 0
    assert out.sum() > 0  # planted occurrences are found


def test_binomial_prices_bounded_by_spot():
    spec = PERF_WORKLOADS["BinomialOption"]("small")
    res = run_on_cucc(spec, Cluster(SIMD_FOCUSED_NODE, 2))
    out = res.runtime.memory.memcpy_d2h("value")
    spot = spec.arrays["spot"]
    assert np.all(out >= 0) and np.all(out <= spot + 1e-3)

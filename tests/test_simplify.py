"""IR simplification: folding correctness and exactness properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.parser import parse_kernel
from repro.interp import BlockExecutor, LaunchConfig, run_grid
from repro.ir import (
    BOOL,
    F32,
    I32,
    IRBuilder,
    count_nodes,
    print_expr,
    print_kernel,
)
from repro.ir.expr import BinOp, Cast, Const, Select, UnOp, Var, const
from repro.transform.simplify import simplify_expr, simplify_kernel


def test_constant_folding_int():
    e = simplify_expr(const(3) * const(4) + const(2))
    assert e == Const(14, I32)


def test_constant_folding_respects_c_division():
    assert simplify_expr(const(-7) / const(2)) == Const(-3, I32)
    assert simplify_expr(const(-7) % const(2)) == Const(-1, I32)
    # division by zero constant is left in place (visible at runtime)
    e = simplify_expr(const(5) / const(0))
    assert isinstance(e, BinOp)


def test_constant_folding_float32_precision():
    # 0.1f + 0.2f in float32, not float64
    a = Const(0.1, F32)
    b = Const(0.2, F32)
    e = simplify_expr(BinOp("+", a, b))
    assert isinstance(e, Const)
    assert e.value == float(np.float32(0.1) + np.float32(0.2))


def test_int_identities():
    x = Var("x", I32)
    assert simplify_expr(x + 0) == x
    assert simplify_expr(0 + x) == x
    assert simplify_expr(x - 0) == x
    assert simplify_expr(x * 1) == x
    assert simplify_expr(x * 0) == Const(0, I32)
    assert simplify_expr(x / const(1)) == x
    assert simplify_expr(x << const(0)) == x
    assert simplify_expr(x & const(0)) == Const(0, I32)
    assert simplify_expr(x | const(0)) == x


def test_float_identities_are_conservative():
    x = Var("x", F32)
    one = Const(1.0, F32)
    zero = Const(0.0, F32)
    assert simplify_expr(BinOp("*", x, one)) == x
    assert simplify_expr(BinOp("/", x, one)) == x
    # x + 0.0 must NOT fold (breaks -0.0)
    assert isinstance(simplify_expr(BinOp("+", x, zero)), BinOp)


def test_bool_identities():
    c = Var("c", BOOL)
    t = Const(True, BOOL)
    f = Const(False, BOOL)
    assert simplify_expr(BinOp("&&", t, c)) == c
    assert simplify_expr(BinOp("&&", f, c)) == f
    assert simplify_expr(BinOp("||", t, c)) == t
    assert simplify_expr(BinOp("||", f, c)) == c


def test_unop_and_cast_folding():
    assert simplify_expr(UnOp("-", const(5))) == Const(-5, I32)
    assert simplify_expr(UnOp("!", Const(True, BOOL))) == Const(False, BOOL)
    x = Var("x", I32)
    assert simplify_expr(UnOp("-", UnOp("-", x))) == x
    assert simplify_expr(Cast(F32, const(3))) == Const(3.0, F32)
    assert simplify_expr(Cast(I32, x)) == x  # same-type cast dropped


def test_select_folding():
    x, y = Var("x", I32), Var("y", I32)
    assert simplify_expr(Select(Const(True, BOOL), x, y)) == x
    assert simplify_expr(Select(Const(False, BOOL), x, y)) == y


def test_dead_branch_elimination():
    src = """
__global__ void k(float *y) {
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (1 < 2) { y[g] = 1.0f; } else { y[g] = 2.0f; }
    if (3 < 2) { y[g] = 9.0f; }
    for (int i = 0; i < 0; i++) { y[g] = 5.0f; }
    while (false) { y[g] = 7.0f; }
}
"""
    k = simplify_kernel(parse_kernel(src))
    text = print_kernel(k)
    assert "2.0f" not in text and "9.0f" not in text
    assert "5.0f" not in text and "7.0f" not in text
    assert "1.0f" in text


def test_macro_heavy_kernel_shrinks():
    src = """
#define TILE 16
#define SCALE 4
__global__ void k(float *y, int n) {
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    if (g < n) y[g + TILE * SCALE - 64] = (float)(2 * 3) * 1.0f;
}
"""
    k = parse_kernel(src)
    sk = simplify_kernel(k)
    assert count_nodes(sk) < count_nodes(k)
    # g + 64 - 64 folds the constants together; semantics preserved
    n = 40
    y1 = np.zeros(64, np.float32)
    y2 = np.zeros(64, np.float32)
    run_grid(k, LaunchConfig.make(2, 32), {"y": y1, "n": n})
    run_grid(sk, LaunchConfig.make(2, 32), {"y": y2, "n": n})
    assert np.array_equal(y1, y2)


@pytest.mark.parametrize("name", ["FIR", "KMeans", "EP", "GA", "Transpose"])
def test_simplified_workloads_equivalent(name):
    from repro.workloads import PERF_WORKLOADS

    spec = PERF_WORKLOADS[name]("small")
    sk = simplify_kernel(spec.kernel)
    arrays = {k: v.copy() for k, v in spec.arrays.items()}
    args = dict(spec.scalars)
    args.update(arrays)
    run_grid(sk, LaunchConfig.make(spec.grid, spec.block), args)
    spec.verify({o: arrays[o] for o in spec.outputs})


# ---------------------------------------------------------------------------
# property: simplification is semantics-preserving on random expressions
# ---------------------------------------------------------------------------
from test_property_interp import GRID, N, TPB, float_exprs  # noqa: E402


@given(float_exprs(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_simplify_preserves_semantics(pair, seed):
    ir_fn, _ = pair
    b = IRBuilder("prop")
    in0 = b.pointer_param("in0", F32)
    in1 = b.pointer_param("in1", F32)
    out = b.pointer_param("out", F32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    ctx = {"in0": in0, "in1": in1, "gid": gid}
    b.store(out, gid, ir_fn(ctx))
    kernel = b.finish()
    simplified = simplify_kernel(kernel)

    rng = np.random.default_rng(seed)
    x0 = rng.uniform(-4, 4, N).astype(np.float32)
    x1 = rng.uniform(-4, 4, N).astype(np.float32)
    y1 = np.zeros(N, dtype=np.float32)
    y2 = np.zeros(N, dtype=np.float32)
    run_grid(kernel, LaunchConfig.make(GRID, TPB),
             {"in0": x0, "in1": x1, "out": y1})
    run_grid(simplified, LaunchConfig.make(GRID, TPB),
             {"in0": x0, "in1": x1, "out": y2})
    assert np.array_equal(y1, y2, equal_nan=True)

"""End-to-end property: random kernels through the full CuCC stack.

Hypothesis generates small kernels with randomized launch geometry,
bound checks, per-thread write multiplicity and value expressions, and
random cluster sizes.  Each kernel runs through:

* the reference single-memory interpreter (`run_grid`), and
* the complete CuCC pipeline — compile, analyze, plan, three-phase
  execution on genuinely private node memories.

Whatever the analysis decided (distributed or replicated fallback), the
cluster result must equal the reference *on every node*.  This is the
paper's correctness contract: sufficient-not-necessary analysis, always-
correct execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_on_cucc
from repro.cluster import Cluster
from repro.hw import SIMD_FOCUSED_NODE
from repro.interp import LaunchConfig, run_grid
from repro.ir import F32, I32, IRBuilder
from repro.workloads.base import WorkloadSpec


@st.composite
def kernel_cases(draw):
    """A randomized (kernel, grid, block, scalars, n_out) bundle."""
    block = draw(st.sampled_from([8, 32, 64]))
    grid = draw(st.integers(2, 12))
    writes_per_thread = draw(st.integers(1, 3))
    guard = draw(st.sampled_from(["none", "if", "return"]))
    slack = draw(st.integers(0, block + 3))
    value_kind = draw(st.sampled_from(["affine", "input", "loopmix"]))
    # a fraction of cases use a gap stride -> launch check must reject
    # distribution and fall back to replicated execution
    stride = draw(st.sampled_from([writes_per_thread, writes_per_thread + 1]))

    n_threads = grid * block - slack

    b = IRBuilder("prop_kernel")
    src = b.pointer_param("src", F32)
    dest = b.pointer_param("dest", F32)
    n = b.scalar_param("n", I32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    if guard == "return":
        with b.if_(gid >= n):
            b.ret()
    body_builder = b

    def emit_stores(bb):
        with bb.for_("j", 0, writes_per_thread) as j:
            idx = gid * stride + j
            if value_kind == "affine":
                val = bb.cast(F32, gid * 3 + j)
            elif value_kind == "input":
                val = bb.load(src, gid) + bb.cast(F32, j)
            else:
                val = bb.load(src, (gid + j) % n) * 0.5
            bb.store(dest, idx, val)

    if guard == "if":
        with b.if_(gid < n):
            emit_stores(body_builder)
    else:
        emit_stores(body_builder)

    kernel = b.finish()
    if guard == "none":
        n_bound = grid * block  # everything in range
    else:
        n_bound = n_threads
    out_elems = grid * block * stride + writes_per_thread
    return kernel, grid, block, n_bound, out_elems, stride == writes_per_thread


@given(kernel_cases(), st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_cluster_matches_single_memory_reference(case, nodes, seed):
    kernel, grid, block, n_bound, out_elems, dense = case
    rng = np.random.default_rng(seed)
    src = rng.random(max(out_elems, grid * block)).astype(np.float32)

    # reference execution on one memory space
    ref = np.zeros(out_elems, dtype=np.float32)
    run_grid(
        kernel,
        LaunchConfig.make(grid, block),
        {"src": src, "dest": ref, "n": n_bound},
    )

    spec = WorkloadSpec(
        name="prop",
        kernel=kernel,
        grid=grid,
        block=block,
        arrays={"src": src, "dest": np.zeros(out_elems, dtype=np.float32)},
        scalars={"n": n_bound},
        outputs=("dest",),
        reference={"dest": ref},
    )
    res = run_on_cucc(
        spec,
        Cluster(SIMD_FOCUSED_NODE, nodes),
        faithful_replication=True,
    )  # verifies every node's replica against `ref`
    plan = res.record.plan
    if not dense:
        # gapped footprints must never be distributed
        assert plan.replicated
    if not plan.replicated:
        assert plan.executed_blocks > 0
        assert plan.executed_blocks + len(plan.callback_blocks) == grid

"""Hardware models: spec database sanity and roofline model properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    A100,
    SIMD_FOCUSED_NODE,
    THREAD_FOCUSED_NODE,
    V100,
    ModelParams,
    cpu_node_time,
    gpu_time,
    spec_table_rows,
)
from repro.interp import OpCounters


def test_table1_derived_flops():
    """The spec database must reproduce the paper's Table 1 numbers."""
    assert SIMD_FOCUSED_NODE.peak_tflops == pytest.approx(4.15, abs=0.01)
    assert THREAD_FOCUSED_NODE.peak_tflops == pytest.approx(8.19, abs=0.01)
    assert A100.peak_tflops == pytest.approx(19.5, abs=0.1)
    assert V100.peak_tflops == pytest.approx(15.7, abs=0.1)
    assert SIMD_FOCUSED_NODE.cores == 24
    assert THREAD_FOCUSED_NODE.cores == 128
    assert A100.sms == 108 and V100.sms == 80


def test_spec_table_rows():
    rows = spec_table_rows()
    assert len(rows) == 4
    names = [r["Name"] for r in rows]
    assert names == ["SIMD-Focused", "Thread-Focused", "A100 GPU", "V100 GPU"]
    assert rows[0]["Nodes"] == 32 and rows[1]["Nodes"] == 4
    assert rows[0]["FLOPs (Tera)"] == 4.15
    assert rows[1]["Year"] == 2021


def test_core_limiting():
    capped = THREAD_FOCUSED_NODE.limited_to_cores(64)
    assert capped.cores == 64
    assert capped.peak_tflops == pytest.approx(8.19 / 2, abs=0.01)
    assert capped.mem_bw_gbs == THREAD_FOCUSED_NODE.mem_bw_gbs
    with pytest.raises(ValueError):
        SIMD_FOCUSED_NODE.limited_to_cores(100)


def _counters(flops=0.0, bytes_=0.0, barriers=0.0):
    return OpCounters(
        flops=flops,
        global_load_bytes=bytes_,
        global_line_bytes=bytes_,
        barriers=barriers,
    )


@given(
    flops=st.floats(1e6, 1e12),
    blocks=st.integers(1, 4096),
)
@settings(max_examples=50, deadline=None)
def test_cpu_time_positive_and_monotone_in_work(flops, blocks):
    t1 = cpu_node_time(SIMD_FOCUSED_NODE, _counters(flops), blocks, True)
    t2 = cpu_node_time(SIMD_FOCUSED_NODE, _counters(2 * flops), blocks, True)
    assert 0 < t1 <= t2


def test_cpu_time_zero_blocks():
    assert cpu_node_time(SIMD_FOCUSED_NODE, _counters(1e9), 0, True) == 0.0


def test_vectorized_faster_than_scalar():
    c = _counters(flops=1e10)
    tv = cpu_node_time(SIMD_FOCUSED_NODE, c, 1024, vectorized=True)
    ts = cpu_node_time(SIMD_FOCUSED_NODE, c, 1024, vectorized=False)
    t_off = cpu_node_time(
        SIMD_FOCUSED_NODE, c, 1024, vectorized=True, simd_enabled=False
    )
    assert tv < ts
    assert t_off == pytest.approx(ts)  # SIMD off == scalar issue


def test_wave_quantization():
    """A 25th block on a 24-core node costs a whole extra wave."""
    per_block = _counters(flops=1e8)
    t24 = cpu_node_time(SIMD_FOCUSED_NODE, per_block.scaled(24), 24, True)
    t25 = cpu_node_time(SIMD_FOCUSED_NODE, per_block.scaled(25), 25, True)
    assert t25 > 1.8 * t24


def test_llc_boost():
    c = _counters(bytes_=1e7)  # 10 MB touched
    fits = cpu_node_time(
        SIMD_FOCUSED_NODE, c, 24, True, working_set_bytes=10e6
    )
    spills = cpu_node_time(
        SIMD_FOCUSED_NODE, c, 24, True, working_set_bytes=1e9
    )
    assert fits < spills


def test_line_amplification_charged_in_dram():
    strided = OpCounters(global_load_bytes=1e8, global_line_bytes=1.6e9)
    coalesced = OpCounters(global_load_bytes=1e8, global_line_bytes=1e8)
    t_s = cpu_node_time(
        SIMD_FOCUSED_NODE, strided, 24, True, working_set_bytes=1e9
    )
    t_c = cpu_node_time(
        SIMD_FOCUSED_NODE, coalesced, 24, True, working_set_bytes=1e9
    )
    assert t_s > 10 * t_c


def test_scalar_streaming_cap():
    """Few-core nodes lose bandwidth without SIMD; many-core nodes don't."""
    c = OpCounters(global_load_bytes=1e9, global_line_bytes=1e9)
    params = ModelParams()
    simd_on = cpu_node_time(
        SIMD_FOCUSED_NODE, c, 24, True, working_set_bytes=1e9, params=params
    )
    simd_off = cpu_node_time(
        SIMD_FOCUSED_NODE, c, 24, True, simd_enabled=False,
        working_set_bytes=1e9, params=params
    )
    assert simd_off > simd_on  # 24 cores cannot stream scalar at full bw
    thr_on = cpu_node_time(
        THREAD_FOCUSED_NODE, c, 128, True, working_set_bytes=1e9
    )
    thr_off = cpu_node_time(
        THREAD_FOCUSED_NODE, c, 128, True, simd_enabled=False,
        working_set_bytes=1e9
    )
    assert thr_off == pytest.approx(thr_on)  # 128 cores still saturate


def test_gpu_wave_model():
    per_block = OpCounters(flops=1e7)
    t108 = gpu_time(A100, per_block.scaled(108), 108, 256)
    t109 = gpu_time(A100, per_block.scaled(109), 109, 256)
    t216 = gpu_time(A100, per_block.scaled(216), 216, 256)
    # the 109th block makes some SM run two blocks: ~2x makespan, the
    # same as a full second wave
    assert t109 > 1.5 * t108
    assert t216 == pytest.approx(t109, rel=0.05)
    # saturated grids amortize waves: 100x the blocks ~ 100x the time
    t_big = gpu_time(A100, per_block.scaled(10800), 10800, 256)
    assert t_big == pytest.approx(100 * t108, rel=0.1)


def test_gpu_sync_cost_scales_with_barriers():
    quiet = _counters(flops=1e8)
    phased = _counters(flops=1e8, barriers=1e6)
    assert gpu_time(A100, phased, 1024, 256) > gpu_time(A100, quiet, 1024, 256)


def test_gpu_zero_blocks():
    assert gpu_time(A100, _counters(1e9), 0, 256) == 0.0


def test_counters_weighting():
    assert OpCounters(special_ops=1).weighted_flops == 8.0
    assert OpCounters(div_ops=1).weighted_flops == 4.0
    assert OpCounters(flops=1, int_ops=2).weighted_ops == 3.0

"""Simulated cluster: clocks, node isolation, collectives, communicator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, SimClock, collectives as coll, make_cluster
from repro.errors import ClusterError, DeviceMemoryError
from repro.hw import INFINIBAND_100G, SIMD_FOCUSED_NODE, THREAD_FOCUSED_NODE

NET = INFINIBAND_100G


# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------
def test_simclock():
    c = SimClock()
    assert c.now == 0.0
    c.advance(1.5)
    c.wait_until(1.0)  # no-op backwards
    assert c.now == 1.5
    c.wait_until(2.0)
    assert c.now == 2.0
    with pytest.raises(ValueError):
        c.advance(-1)
    c.reset()
    assert c.now == 0.0


# ---------------------------------------------------------------------------
# node memory isolation
# ---------------------------------------------------------------------------
def test_nodes_have_private_memory():
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    for node in cl.nodes:
        node.alloc("buf", 16, np.float32)
    cl.nodes[0].buffer("buf")[:] = 7.0
    assert np.all(cl.nodes[1].buffer("buf") == 0.0)
    assert np.all(cl.nodes[2].buffer("buf") == 0.0)
    assert cl.nodes[0].buffer("buf").base is None  # no shared storage


def test_node_alloc_errors():
    cl = Cluster(SIMD_FOCUSED_NODE, 1)
    node = cl.nodes[0]
    node.alloc("x", 4, np.int32)
    with pytest.raises(DeviceMemoryError):
        node.alloc("x", 4, np.int32)
    with pytest.raises(DeviceMemoryError):
        node.buffer("nope")
    node.free("x")
    with pytest.raises(DeviceMemoryError):
        node.free("x")


def test_make_cluster():
    cl = make_cluster("simd-focused", 4)
    assert cl.num_nodes == 4 and cl.total_cores == 96
    assert abs(cl.peak_tflops - 4 * 4.15) < 0.1
    with pytest.raises(ClusterError):
        make_cluster("simd-focused", 33)  # only 32 physical nodes
    with pytest.raises(ClusterError):
        make_cluster("nonsense", 2)
    capped = make_cluster("thread-focused", 2, cores_per_node=64)
    assert capped.node_spec.cores == 64


# ---------------------------------------------------------------------------
# collective cost model properties
# ---------------------------------------------------------------------------
@given(
    n=st.integers(2, 64),
    mb=st.floats(0.001, 1000),
)
@settings(max_examples=60, deadline=None)
def test_balanced_inplace_is_cheapest(n, mb):
    payload = mb * 1e6
    t_in = coll.allgather_inplace_cost(NET, n, payload)
    t_out = coll.allgather_outofplace_cost(NET, n, payload, 100.0)
    shares = [payload / n] * n
    shares[0] = payload / 2
    rest = (payload - shares[0]) / (n - 1)
    shares[1:] = [rest] * (n - 1)
    t_imb = coll.allgather_imbalanced_cost(NET, shares)
    assert t_in <= t_out
    assert t_in <= t_imb + 1e-12


@given(n=st.integers(2, 64), mb1=st.floats(1, 100), mb2=st.floats(1, 100))
@settings(max_examples=40, deadline=None)
def test_allgather_cost_monotone_in_bytes(n, mb1, mb2):
    lo, hi = sorted([mb1, mb2])
    assert coll.allgather_inplace_cost(NET, n, lo * 1e6) <= (
        coll.allgather_inplace_cost(NET, n, hi * 1e6)
    )


def test_collective_edge_cases():
    assert coll.allgather_inplace_cost(NET, 1, 1e9) == 0.0
    assert coll.allgather_inplace_cost(NET, 8, 0) == 0.0
    assert coll.bcast_cost(NET, 1, 1e9) == 0.0
    assert coll.barrier_cost(NET, 1) == 0.0
    assert coll.rma_cost(NET, 0, 0) == 0.0
    assert coll.ptp_cost(NET, 1e6) > 1e6 / NET.beta_bytes_per_s


# ---------------------------------------------------------------------------
# communicator: functional data movement + clock advancement
# ---------------------------------------------------------------------------
@given(
    nodes=st.integers(2, 6),
    per_rank=st.integers(1, 50),
    base=st.integers(0, 10),
)
@settings(max_examples=30, deadline=None)
def test_allgather_in_place_reconstructs_concatenation(nodes, per_rank, base):
    cl = Cluster(SIMD_FOCUSED_NODE, nodes)
    total = base + per_rank * nodes + 3
    rng = np.random.default_rng(nodes * 100 + per_rank)
    slices = [rng.integers(0, 1000, per_rank).astype(np.int64)
              for _ in range(nodes)]
    for r, node in enumerate(cl.nodes):
        buf = node.alloc("d", total, np.int64)
        buf[base + r * per_rank : base + (r + 1) * per_rank] = slices[r]
    t0 = cl.max_clock
    cl.comm.allgather_in_place("d", base, per_rank)
    expected = np.concatenate(slices)
    for node in cl.nodes:
        got = node.buffer("d")[base : base + per_rank * nodes]
        assert np.array_equal(got, expected)
    assert cl.max_clock > t0  # time advanced
    assert all(n.clock.now == cl.max_clock for n in cl.nodes)  # synchronized


def test_allgather_preserves_data_outside_region():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    for node in cl.nodes:
        buf = node.alloc("d", 10, np.int32)
        buf[:] = 99  # replicated pre-state
        buf[2 + node.rank * 3 : 2 + (node.rank + 1) * 3] = node.rank + 1
    cl.comm.allgather_in_place("d", 2, 3)
    for node in cl.nodes:
        b = node.buffer("d")
        assert list(b[:2]) == [99, 99] and list(b[8:]) == [99, 99]
        assert list(b[2:8]) == [1, 1, 1, 2, 2, 2]


def test_allgather_out_of_place():
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    for node in cl.nodes:
        src = node.alloc("src", 4, np.int32)
        node.alloc("dst", 12, np.int32)
        src[:] = node.rank
    cl.comm.allgather_out_of_place("src", "dst", 4, copy_GBs=100.0)
    for node in cl.nodes:
        assert list(node.buffer("dst")) == [0] * 4 + [1] * 4 + [2] * 4


def test_allgatherv_imbalanced():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    counts = [3, 1]
    for node in cl.nodes:
        node.alloc("d", 4, np.int32)
    cl.nodes[0].buffer("d")[0:3] = [1, 2, 3]
    cl.nodes[1].buffer("d")[3:4] = [4]
    cl.comm.allgatherv_in_place("d", 0, counts)
    for node in cl.nodes:
        assert list(node.buffer("d")) == [1, 2, 3, 4]
    with pytest.raises(ClusterError):
        cl.comm.allgatherv_in_place("d", 0, [1])


def test_allgather_slice_out_of_range():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    for node in cl.nodes:
        node.alloc("d", 4, np.int8)
    with pytest.raises(ClusterError, match="out of range"):
        cl.comm.allgather_in_place("d", 0, 3)  # 2 ranks x 3 > 4


def test_bcast():
    cl = Cluster(THREAD_FOCUSED_NODE, 3)
    for node in cl.nodes:
        node.alloc("d", 5, np.float64)
    cl.nodes[1].buffer("d")[:] = 3.14
    cl.comm.bcast("d", root=1)
    for node in cl.nodes:
        assert np.all(node.buffer("d") == 3.14)
    with pytest.raises(ClusterError):
        cl.comm.bcast("d", root=9)


def test_send_slice():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    for node in cl.nodes:
        node.alloc("d", 8, np.int16)
    cl.nodes[0].buffer("d")[2:5] = [7, 8, 9]
    d = cl.comm.send_slice("d", 0, 1, 2, 5)
    assert d > 0
    assert list(cl.nodes[1].buffer("d")[2:5]) == [7, 8, 9]
    assert cl.comm.send_slice("d", 1, 1, 0, 4) == 0.0  # self-send free


def test_barrier_synchronizes_clocks():
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    cl.nodes[0].clock.advance(1.0)
    cl.nodes[2].clock.advance(5.0)
    cl.comm.barrier()
    assert all(n.clock.now >= 5.0 for n in cl.nodes)
    assert len({n.clock.now for n in cl.nodes}) == 1


def test_comm_accounting():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    for node in cl.nodes:
        node.alloc("d", 8, np.int32)
    cl.comm.allgather_in_place("d", 0, 4)
    assert cl.comm.comm_bytes == 2 * 4 * 4  # each rank's 16B to 1 peer
    assert cl.comm.comm_seconds > 0
    cl.reset_clocks()
    assert cl.max_clock == 0.0 and cl.comm.comm_bytes == 0


def test_allreduce_sum():
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    for node in cl.nodes:
        buf = node.alloc("d", 4, np.float32)
        buf[:] = node.rank + 1  # 1, 2, 3
    d = cl.comm.allreduce_sum("d")
    assert d > 0
    for node in cl.nodes:
        assert np.all(node.buffer("d") == 6.0)


def test_allreduce_deterministic_float_order():
    cl1 = Cluster(SIMD_FOCUSED_NODE, 4)
    cl2 = Cluster(SIMD_FOCUSED_NODE, 4)
    rng = np.random.default_rng(0)
    vals = rng.random((4, 64)).astype(np.float32)
    for cl in (cl1, cl2):
        for node in cl.nodes:
            node.alloc("d", 64, np.float32)[:] = vals[node.rank]
        cl.comm.allreduce_sum("d")
    assert np.array_equal(cl1.nodes[0].buffer("d"), cl2.nodes[3].buffer("d"))


def test_allreduce_and_reduce_costs():
    assert coll.allreduce_cost(NET, 8, 1e6) > coll.allgather_inplace_cost(
        NET, 8, 1e6
    )
    assert coll.reduce_cost(NET, 8, 1e6) > 0
    assert coll.allreduce_cost(NET, 1, 1e6) == 0
    assert coll.reduce_cost(NET, 1, 1e6) == 0


def test_zero_byte_allgather_is_modeled_noop():
    """per_rank == 0 must be a true no-op: no data, no cost, no clock sync."""
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    for node in cl.nodes:
        node.alloc("d", 6, np.int32)
    cl.nodes[0].clock.advance(1.0)  # deliberately skew the clocks
    before = [n.clock.now for n in cl.nodes]
    d = cl.comm.allgather_in_place("d", 0, 0)
    assert d == 0.0
    assert [n.clock.now for n in cl.nodes] == before  # not even synchronized
    assert cl.comm.comm_bytes == 0 and cl.comm.comm_seconds == 0.0


def test_device_memory_error_alias():
    """The deprecated MemoryError_ name must remain importable."""
    from repro.errors import MemoryError_

    assert MemoryError_ is DeviceMemoryError

"""Per-line profiler, model-drift telemetry, continuous benchmarks.

Covers the PR's three legs end to end: the exact-attribution invariant
of the per-line profiler (per-line counts sum field-by-field to the
aggregate OpCounters — pinned with a hypothesis property over random
divergent kernels), the Perfetto counter-track export, the drift
telemetry for ring and hierarchical Allgather paths, the CLI surface
(``repro profile``, ``run --profile/--drift``, ``report --drift``,
parent-directory creation for output paths), and the ``BENCH_*.json``
continuous-benchmark pipeline with its regression gate.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.continuous import run_continuous, validate_bench_json
from repro.bench.harness import geomean, run_on_cucc
from repro.cli import main as cli_main
from repro.cluster import make_cluster
from repro.interp import BlockExecutor, LaunchConfig
from repro.interp.counters import OpCounters
from repro.ir import F32, IRBuilder
from repro.ir.visitor import iter_stmts
from repro.obs import METRICS
from repro.obs.drift import (
    DEFAULT_DRIFT_BOUND,
    format_drift_report,
    signed_rel_error,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.profiler import KernelProfile, Profiler, roofline_placement
from repro.runtime import CuCCRuntime
from repro.workloads import PERF_WORKLOADS
from trace_schema import validate_chrome_trace

NODES = 4
TPB = 32
GRID = 3
N = TPB * GRID

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def fresh_metrics():
    """Isolate the process-wide registry per test."""
    METRICS.reset()
    yield
    METRICS.reset()


def _run(name="KMeans", nodes=NODES, **kw):
    spec = PERF_WORKLOADS[name]("small", seed=0)
    return run_on_cucc(spec, make_cluster("simd-focused", nodes), **kw)


def _aggregate(record) -> OpCounters:
    """Aggregate counters of one launch, the way the runtime books them."""
    agg = OpCounters()
    for c in record.partial_counters:
        agg.add(c)
    agg.add(record.callback_counters)
    return agg


# ---------------------------------------------------------------------------
# runtime attribution: per-line sums reproduce the aggregate exactly
# ---------------------------------------------------------------------------
def test_runtime_per_line_totals_match_aggregate():
    res = _run(profile=True)
    prof = res.runtime.profiler
    rec = res.record
    assert prof.total(rec.kernel_name).as_dict() == _aggregate(rec).as_dict()
    profile = prof.profiles[rec.kernel_name]
    # both execution phases were attributed, kept apart
    assert set(profile.phases) == {"partial", "callback"}
    split = profile.phase_split()
    assert sum(split.values()) == pytest.approx(1.0)
    # per-phase totals also reproduce the per-phase aggregates
    part = OpCounters()
    for c in rec.partial_counters:
        part.add(c)
    assert profile.total("partial").as_dict() == part.as_dict()
    assert (
        profile.total("callback").as_dict() == rec.callback_counters.as_dict()
    )


def test_profiler_shared_across_launches_accumulates():
    prof = Profiler()
    _run(name="FIR", nodes=2, profile=prof)
    _run(name="KMeans", nodes=2, profile=prof)
    assert set(prof.profiles) >= {"fir1d", "kmeans_assign"} or len(
        prof.profiles
    ) == 2
    for kp in prof.profiles.values():
        assert kp.total().weighted_ops > 0


def test_profiling_off_and_on_keep_modeled_times_identical():
    off = _run(trace=True)
    on = _run(trace=True, profile=True)
    assert off.record.phases == on.record.phases
    assert off.runtime.sim_time == on.runtime.sim_time
    # unprofiled traces carry no counter events at all
    obj_off = chrome_trace(off.runtime.tracer)
    assert all(e["ph"] != "C" for e in obj_off["traceEvents"])
    assert _run().runtime.profiler is None  # off by default


# ---------------------------------------------------------------------------
# hypothesis property: exact per-line attribution under divergence
# ---------------------------------------------------------------------------
@st.composite
def profiled_kernels(draw):
    """Random DSL kernels with if/for/while divergence, locs stamped
    pseudo-randomly (including collisions and loc-less statements)."""
    k = draw(st.integers(2, 5))
    m = draw(st.integers(1, k))
    trip = draw(st.integers(1, 3))
    wtrip = draw(st.integers(0, 3))
    stride = draw(st.integers(1, 4))
    offset = draw(st.integers(0, 6))

    b = IRBuilder("prop_prof")
    in0 = b.pointer_param("in0", F32)
    out = b.pointer_param("out", F32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    acc = b.let("acc", b.load(in0, gid))
    with b.if_(gid % k < m):  # lane divergence
        with b.for_("i", 0, trip):
            b.assign(acc, acc + b.load(in0, gid))
    j = b.let("j", gid % k)
    with b.while_(j < wtrip):  # per-lane trip counts
        b.assign(acc, acc * 1.5)
        b.assign(j, j + 1)
    b.store(out, gid, acc)
    kernel = b.finish()

    # stamp source lines: collisions and None both allowed
    for i, s in enumerate(iter_stmts(kernel.body)):
        v = (i * stride + offset) % 7
        s.loc = None if v == 0 else v
    return kernel


@given(profiled_kernels(), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_per_line_counts_sum_exactly_to_aggregate(kernel, seed):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.5, 2.0, N).astype(np.float32)
    outb = np.zeros(N, dtype=np.float32)
    prof = Profiler()
    agg = OpCounters()
    ex = BlockExecutor(
        kernel,
        LaunchConfig.make(GRID, TPB),
        {"in0": x, "out": outb},
        counters=agg,
        profile=prof,
    )
    ex.run_blocks(range(GRID), span=2)
    # exact, field by field — not approx: attribution mirrors every add
    assert prof.total(kernel.name).as_dict() == agg.as_dict()
    assert set(prof.profiles[kernel.name].phases) == {"grid"}


def test_while_condition_bills_loop_header_line():
    b = IRBuilder("while_attr")
    out = b.pointer_param("out", F32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    j = b.let("j", gid * 0)
    with b.while_(j < 3):
        b.assign(j, j + 1)
    b.store(out, gid, 1.0)
    kernel = b.finish()
    stmts = list(iter_stmts(kernel.body))
    for i, s in enumerate(stmts):
        s.loc = i + 1
    while_loc = next(
        s.loc for s in stmts if type(s).__name__ == "While"
    )
    prof = Profiler()
    agg = OpCounters()
    ex = BlockExecutor(
        kernel,
        LaunchConfig.make(1, TPB),
        {"out": np.zeros(TPB, dtype=np.float32)},
        counters=agg,
        profile=prof,
    )
    ex.run_blocks(range(1))
    lines = prof.profiles[kernel.name].lines()
    # 4 condition evaluations per lane (3 true + 1 final false), all
    # billed to the loop-header line, none lost to the body's bucket
    assert lines[while_loc].int_ops == 4.0 * TPB
    assert prof.total(kernel.name).as_dict() == agg.as_dict()


def test_rollups_fold_loop_body_into_header_total():
    b = IRBuilder("rollup")
    in0 = b.pointer_param("in0", F32)
    out = b.pointer_param("out", F32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    acc = b.let("acc", 0.0)
    with b.for_("i", 0, 4):
        b.assign(acc, acc + b.load(in0, gid))
    b.store(out, gid, acc)
    kernel = b.finish()
    stmts = list(iter_stmts(kernel.body))
    for i, s in enumerate(stmts):
        s.loc = i + 1
    for_loc = next(s.loc for s in stmts if type(s).__name__ == "For")
    x = np.ones(TPB, dtype=np.float32)
    prof = Profiler()
    agg = OpCounters()
    ex = BlockExecutor(
        kernel,
        LaunchConfig.make(1, TPB),
        {"in0": x, "out": np.zeros(TPB, dtype=np.float32)},
        counters=agg,
        profile=prof,
    )
    ex.run_blocks(range(1))
    kp = prof.profiles[kernel.name]
    rolled = {loc: (own, tot) for loc, own, tot in kp.rollups()}
    own, tot = rolled[for_loc]
    # the header's total folds in the body's adds/loads; its self does not
    assert tot.weighted_ops > own.weighted_ops
    body_loc = for_loc + 1
    assert tot.weighted_ops == pytest.approx(
        own.weighted_ops + rolled[body_loc][1].weighted_ops
    )
    table = kp.hotspot_table()
    assert "TOTAL" in table and "w.ops" in table


def test_report_includes_roofline_and_source():
    res = _run(profile=True)
    rt = res.runtime
    report = rt.profiler.report(
        spec=rt.cluster.nodes[0].spec,
        simd_enabled=rt.simd_enabled,
        params=rt.params,
    )
    assert "roofline:" in report and "-bound" in report
    assert "phase split" in report
    r = roofline_placement(
        rt.profiler.total(res.record.kernel_name),
        rt.cluster.nodes[0].spec,
        vectorized=True,
    )
    assert r["bound"] in ("compute", "memory")
    assert r["intensity_ops_per_byte"] > 0
    digest = rt.profiler.hotspot_digest(top=2)
    assert digest and all(0.0 <= h["ops_share"] <= 1.0 for h in digest)


def test_kernel_profile_source_line_lookup():
    b = IRBuilder("nosrc")
    out = b.pointer_param("out", F32)
    b.store(out, b.tid_x, 1.0)
    kp = KernelProfile(b.finish())
    assert kp.source_line(None) == "<no source loc>"
    assert kp.source_line(999) == "?"


# ---------------------------------------------------------------------------
# Perfetto counter-track export
# ---------------------------------------------------------------------------
def test_counter_events_exported_and_schema_valid(tmp_path):
    res = _run(trace=True, profile=True)
    path = write_chrome_trace(res.runtime.tracer, tmp_path / "t.json")
    obj = json.loads(path.read_text())
    assert validate_chrome_trace(obj) == []
    counters = [e for e in obj["traceEvents"] if e["ph"] == "C"]
    assert len(counters) >= 2
    assert all(e["name"] == "profile.cumulative" for e in counters)
    ops = [e["args"]["weighted_ops"] for e in counters]
    assert ops == sorted(ops)  # cumulative series never decreases
    assert ops[0] == 0.0
    # the final sample equals the profiler's own aggregate
    assert ops[-1] == pytest.approx(
        res.runtime.profiler.total(res.record.kernel_name).weighted_ops
    )
    assert all("id" not in e["args"] for e in counters)


def test_counter_schema_checker_rejects_bad_series():
    bad = {
        "displayTimeUnit": "ms",
        "traceEvents": [
            {"name": "c", "cat": "counter", "pid": 0, "tid": 0, "ts": 0.0,
             "ph": "C", "args": {"v": "high"}},
            {"name": "c", "cat": "counter", "pid": 0, "tid": 0, "ts": 0.0,
             "ph": "C", "args": {}},
        ],
    }
    problems = validate_chrome_trace(bad)
    assert any("must be a number" in p for p in problems)
    assert any("empty args" in p for p in problems)


# ---------------------------------------------------------------------------
# model-drift telemetry
# ---------------------------------------------------------------------------
def test_signed_rel_error_corners():
    assert signed_rel_error(1.2, 1.0) == pytest.approx(0.2)
    assert signed_rel_error(0.8, 1.0) == pytest.approx(-0.2)
    assert signed_rel_error(0.0, 0.0) == 0.0
    assert signed_rel_error(1.0, 0.0) == float("inf")


def _drift_run(algo, topology=None, nodes=8):
    """A KMeans launch with a forced Allgather algorithm, drift on."""
    spec = PERF_WORKLOADS["KMeans"]("small", seed=0)
    cluster = make_cluster("simd-focused", nodes, topology=topology)
    rt = CuCCRuntime(
        cluster,
        faithful_replication=False,
        allgather_algo=algo,
        trace=True,
        drift=True,
    )
    for name, arr in spec.arrays.items():
        rt.memory.alloc(name, arr.size, arr.dtype)
        rt.memory.memcpy_h2d(name, arr)
    rt.launch(rt.compile(spec.kernel), spec.grid, spec.block, spec.args())
    return rt


@pytest.mark.parametrize(
    "algo,topology",
    [("ring", None), ("hierarchical", "fat-tree")],
)
def test_drift_covers_ring_and_hierarchical_paths(algo, topology):
    rt = _drift_run(algo, topology)
    report = format_drift_report(rt.tracer)
    assert algo in report
    assert "partial" in report and "allgather" in report
    # fault-free, the executed run prices phases with the same model the
    # prediction uses — every row must sit inside the default bound
    assert "OVER" not in report
    assert f"within the {DEFAULT_DRIFT_BOUND * 100:.0f}% drift bound" in report
    # histogram series landed with the right labels
    snap = METRICS.snapshot()["model.drift_rel_err"]
    assert any(f"algo={algo}" in label for label in snap)
    assert any("phase=partial" in label for label in snap)


def test_drift_off_records_nothing_and_leaves_spans_clean():
    res = _run(trace=True)
    assert "model.drift_rel_err" not in METRICS.names()
    assert format_drift_report(res.runtime.tracer).startswith(
        "drift: no launches"
    )


def test_drift_on_does_not_change_modeled_times():
    off = _run()
    on = _run(drift=True)
    assert off.record.phases == on.record.phases
    assert off.runtime.sim_time == on.runtime.sim_time


def test_drift_report_flags_inflated_predictions(tmp_path):
    rt = _drift_run("ring")
    path = write_chrome_trace(rt.tracer, tmp_path / "t.json")
    obj = json.loads(path.read_text())
    for ev in obj["traceEvents"]:
        if "predicted_partial_s" in ev.get("args", {}):
            ev["args"]["predicted_partial_s"] *= 10.0  # fake a drifted model
    doctored = tmp_path / "d.json"
    doctored.write_text(json.dumps(obj))
    report = format_drift_report(str(doctored))
    assert "OVER" in report and "exceed" in report
    # a tighter bound flags the honest file too
    assert "OVER" in format_drift_report(str(path), bound=-1.0)


# ---------------------------------------------------------------------------
# CLI: parent-dir creation, profile command, report --drift
# ---------------------------------------------------------------------------
def test_cli_run_creates_missing_output_parent_dirs(tmp_path, capsys):
    trace = tmp_path / "deep" / "nested" / "t.json"
    profile = tmp_path / "other" / "profile.txt"
    rc = cli_main(
        ["run", "kmeans", "--nodes", "2", "--trace", str(trace),
         "--profile", str(profile), "--drift"]
    )
    assert rc == 0
    assert trace.exists() and profile.exists()
    assert validate_chrome_trace(json.loads(trace.read_text())) == []
    assert "TOTAL" in profile.read_text()
    capsys.readouterr()
    rc = cli_main(["report", str(trace), "--drift"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "drift bound" in out


def test_cli_report_drift_without_telemetry_says_so(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert cli_main(
        ["run", "kmeans", "--nodes", "2", "--trace", str(trace)]
    ) == 0
    capsys.readouterr()
    assert cli_main(["report", str(trace), "--drift"]) == 0
    assert "re-run with --drift" in capsys.readouterr().out


def test_cli_profile_command_checks_totals(capsys):
    rc = cli_main(["profile", "kmeans", "--nodes", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-line totals match aggregate OpCounters: yes" in out
    assert "TOTAL" in out and "roofline:" in out


def test_cli_profile_and_drift_flags_require_cucc(capsys):
    rc = cli_main(
        ["run", "FIR", "--platform", "pgas", "--profile", "x.txt"]
    )
    assert rc == 1
    assert "--profile requires" in capsys.readouterr().err
    rc = cli_main(["run", "FIR", "--platform", "pgas", "--drift"])
    assert rc == 1
    assert "--drift requires" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# harness satellite: geomean of an empty sequence
# ---------------------------------------------------------------------------
def test_geomean_rejects_empty_sequence():
    with pytest.raises(ValueError, match="empty sequence"):
        geomean([])
    with pytest.raises(ValueError, match="empty sequence"):
        geomean(v for v in [1.0] if v < 0)
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# continuous benchmarking: BENCH_*.json + regression gate
# ---------------------------------------------------------------------------
def test_validate_bench_json_rejects_malformed():
    good = {
        "schema_version": 1,
        "name": "scaling",
        "size": "small",
        "metrics": {"t": 1.0},
    }
    assert validate_bench_json(good) == []
    cases = [
        ({**good, "schema_version": 2}, "schema_version"),
        ({**good, "name": "bad name!"}, "name"),
        ({**good, "size": "huge"}, "size"),
        ({**good, "metrics": {}}, "non-empty"),
        ({**good, "metrics": {"t": float("inf")}}, "finite"),
        ({**good, "metrics": {"t": True}}, "finite"),
        ({**good, "hotspots": [{"ops_share": "no"}]}, "hotspots"),
        ({**good, "extra": 1}, "unknown"),
        ([], "object"),
    ]
    for doc, needle in cases:
        problems = validate_bench_json(doc)
        assert problems and any(needle in p for p in problems), (doc, needle)


def test_run_continuous_emits_documents_matching_baselines(tmp_path):
    out = tmp_path / "bench-out"
    paths = run_continuous(out)
    assert sorted(p.name for p in paths) == [
        "BENCH_collectives.json",
        "BENCH_fault_overhead.json",
        "BENCH_jit.json",
        "BENCH_network.json",
        "BENCH_obs_overhead.json",
        "BENCH_phase_split.json",
        "BENCH_scaling.json",
        "BENCH_serving.json",
    ]
    for p in paths:
        doc = json.loads(p.read_text())
        assert validate_bench_json(doc) == []
        assert doc["size"] == "small"
    scaling = json.loads((out / "BENCH_scaling.json").read_text())
    assert "geomean_speedup_2to4" in scaling["metrics"]
    assert scaling["hotspots"], "profiler digest missing from scaling doc"
    # the regression gate passes against the committed baselines (the
    # simulation is deterministic, so this is an exact-agreement check)
    gate = REPO_ROOT / "benchmarks" / "check_regression.py"
    proc = subprocess.run(
        [sys.executable, str(gate), "--current", str(out)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # ... and fails loudly once a metric moves beyond tolerance
    scaling["metrics"]["geomean_speedup_2to4"] *= 1.5
    (out / "BENCH_scaling.json").write_text(json.dumps(scaling))
    proc = subprocess.run(
        [sys.executable, str(gate), "--current", str(out)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    assert "geomean_speedup_2to4" in proc.stdout


def test_run_continuous_rejects_unknown_benchmark(tmp_path):
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_continuous(tmp_path, names=["nope"])

"""Unit tests for the IR builder, validator, printer and visitors."""

import pytest

from repro.errors import IRError
from repro.frontend.parser import parse_kernel
from repro.ir import (
    F32,
    I32,
    Assign,
    If,
    IRBuilder,
    Load,
    Return,
    Store,
    count_nodes,
    iter_stmts,
    print_kernel,
    sregs_used,
    validate_kernel,
    vars_used,
    walk_stmts,
)
from repro.ir.expr import SRegKind


def build_saxpy():
    b = IRBuilder("saxpy")
    x = b.pointer_param("x", F32)
    y = b.pointer_param("y", F32)
    a = b.scalar_param("a", F32)
    n = b.scalar_param("n", I32)
    gid = b.let("gid", b.bid_x * b.bdim_x + b.tid_x)
    with b.if_(gid < n):
        b.store(y, gid, a * b.load(x, gid) + b.load(y, gid))
    return b.finish()


def test_builder_basic_structure():
    k = build_saxpy()
    assert k.name == "saxpy"
    assert [p.name for p in k.params] == ["x", "y", "a", "n"]
    assert len(k.pointer_params) == 2 and len(k.scalar_params) == 2
    stmts = list(iter_stmts(k.body))
    assert any(isinstance(s, Store) for s in stmts)
    assert any(isinstance(s, If) for s in stmts)


def test_builder_else_branch():
    b = IRBuilder("k")
    y = b.pointer_param("y", F32)
    with b.if_(b.tid_x < 16):
        b.store(y, b.tid_x, 1.0)
    with b.else_():
        b.store(y, b.tid_x, 2.0)
    k = b.finish()
    top_if = k.body[0]
    assert isinstance(top_if, If)
    assert len(top_if.then_body) == 1 and len(top_if.else_body) == 1


def test_else_without_if_fails():
    b = IRBuilder("k")
    b.pointer_param("y", F32)
    with pytest.raises(IRError):
        with b.else_():
            pass


def test_unclosed_block_fails():
    b = IRBuilder("k")
    ctx = b.if_(b.tid_x < 1)
    ctx.__enter__()
    with pytest.raises(IRError):
        b.finish()


def test_duplicate_param_fails():
    b = IRBuilder("k")
    b.scalar_param("n", I32)
    with pytest.raises(IRError):
        b.scalar_param("n", I32)


def test_loop_and_temp():
    b = IRBuilder("k")
    y = b.pointer_param("y", F32)
    acc = b.let("acc", 0.0, F32)
    with b.for_("i", 0, 10) as i:
        b.assign(acc, acc + b.cast(F32, i))
    t = b.temp(acc * 2.0)
    b.store(y, b.tid_x, t)
    k = b.finish()
    assert any(isinstance(s, Assign) and s.name.startswith("_t")
               for s in iter_stmts(k.body))


def test_validator_undefined_variable():
    from repro.ir import Kernel, KernelParam, Var

    k = Kernel("bad", [KernelParam("n", I32)], [Assign("x", Var("ghost", I32))])
    with pytest.raises(IRError, match="undefined variable"):
        validate_kernel(k)


def test_validator_break_outside_loop():
    from repro.ir import Break, Kernel

    k = Kernel("bad", [], [Break()])
    with pytest.raises(IRError, match="outside a loop"):
        validate_kernel(k)


def test_validator_shared_extent_thread_variant():
    b = IRBuilder("bad")
    b.shared("buf", F32, IRBuilder("t").tid_x)  # tid-dependent extent
    with pytest.raises(IRError, match="launch-invariant"):
        b.finish()


def test_validator_local_shadows_param():
    b = IRBuilder("bad")
    b.scalar_param("n", I32)
    b.let("n", 3)
    with pytest.raises(IRError, match="shadows"):
        b.finish()


def test_printer_roundtrips_through_parser():
    k = build_saxpy()
    text = print_kernel(k)
    reparsed = parse_kernel(text)
    # structural equality via re-printing
    assert print_kernel(reparsed) == text


def test_printer_parenthesization():
    b = IRBuilder("k")
    y = b.pointer_param("y", I32)
    e = (b.tid_x + 1) * (b.tid_x - 2)
    b.store(y, b.tid_x, e)
    text = print_kernel(b.finish())
    assert "(threadIdx.x + 1) * (threadIdx.x - 2)" in text


def test_visitors():
    k = build_saxpy()
    store = next(s for s in iter_stmts(k.body) if isinstance(s, Store))
    assert vars_used(store.value) >= {"gid"}
    regs = set()
    for s in iter_stmts(k.body):
        for e in s.exprs():
            regs |= sregs_used(e)
    assert {SRegKind.TID_X, SRegKind.CTAID_X, SRegKind.NTID_X} <= regs
    assert count_nodes(k) > 10
    # walk_stmts paths: the Store's path passes through the If
    paths = {id(s): path for s, path in walk_stmts(k.body)}
    assert any(isinstance(p, If) for p in paths[id(store)])


def test_return_statement_prints():
    b = IRBuilder("k")
    n = b.scalar_param("n", I32)
    with b.if_(b.tid_x >= n):
        b.ret()
    text = print_kernel(b.finish())
    assert "return;" in text

"""The restart differential gate.

Interrupt a run at *every* checkpoint ordinal (the --halt-after drill),
resume from the file, and require results bit-identical to the
uninterrupted run: final buffers, op counters, PhaseTimes floats, fault
events — and the final checkpoints themselves must ``diff`` clean.
Fault-free and faulted (crash + transient) schedules are both gated.
"""

import numpy as np
import pytest

from repro.bench.harness import run_on_cucc
from repro.cluster import FaultPlan, make_cluster
from repro.errors import CheckpointError, CheckpointHalt
from repro.ops import (
    CheckpointPolicy,
    diff_checkpoints,
    latest_checkpoint,
    resume_on_cucc,
)
from repro.workloads import fir


def _policy(directory, halt_after=None):
    return CheckpointPolicy(directory=str(directory), halt_after=halt_after)


def _baseline(tmp_path, fault_plan=None):
    spec = fir.build("small")
    cluster = make_cluster("simd-focused", 4)
    res = run_on_cucc(
        spec,
        cluster,
        fault_plan=fault_plan,
        checkpoint=_policy(tmp_path / "base"),
        app_meta={"workload": spec.name, "size": "small"},
    )
    outs = {
        o: res.runtime.memory.memcpy_d2h(o, check_consistency=True)
        for o in spec.outputs
    }
    return spec, res, outs


def _assert_identical(spec, base_res, base_outs, res):
    assert res.time == base_res.time
    assert res.record.phases == base_res.record.phases
    assert res.record.retries == base_res.record.retries
    assert res.record.recoveries == base_res.record.recoveries
    assert len(res.record.fault_events) == len(base_res.record.fault_events)
    assert (
        res.record.callback_counters.as_dict()
        == base_res.record.callback_counters.as_dict()
    )
    assert [c.as_dict() for c in res.record.partial_counters] == [
        c.as_dict() for c in base_res.record.partial_counters
    ]
    for name, want in base_outs.items():
        got = res.runtime.memory.memcpy_d2h(name, check_consistency=True)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


def _interrupt_resume_gate(tmp_path, fault_plan_str=None):
    plan = (
        FaultPlan.parse(fault_plan_str, seed=7) if fault_plan_str else None
    )
    spec, base_res, base_outs = _baseline(tmp_path, fault_plan=plan)
    total = base_res.runtime.ops.written
    assert total >= 3  # allgather, callback, launch-end at minimum
    for k in range(1, total + 1):
        ckdir = tmp_path / f"halt{k}"
        plan_k = (
            FaultPlan.parse(fault_plan_str, seed=7)
            if fault_plan_str
            else None
        )
        with pytest.raises(CheckpointHalt) as ei:
            run_on_cucc(
                spec,
                make_cluster("simd-focused", 4),
                fault_plan=plan_k,
                checkpoint=_policy(ckdir, halt_after=k),
                app_meta={"workload": spec.name, "size": "small"},
            )
        assert str(ei.value.path).endswith(".rckp")
        res = resume_on_cucc(
            spec, latest_checkpoint(ckdir), checkpoint=_policy(ckdir)
        )
        _assert_identical(spec, base_res, base_outs, res)
        assert diff_checkpoints(
            latest_checkpoint(tmp_path / "base"), latest_checkpoint(ckdir)
        ) == []


def test_interrupt_resume_fault_free(tmp_path):
    _interrupt_resume_gate(tmp_path)


def test_interrupt_resume_faulted(tmp_path):
    _interrupt_resume_gate(
        tmp_path, "crash:rank=1,phase=allgather;transient:op=2"
    )


def test_checkpointing_is_sim_invisible(tmp_path):
    """Armed-but-not-halting checkpoints charge zero simulated time."""
    spec = fir.build("small")
    bare = run_on_cucc(spec, make_cluster("simd-focused", 4))
    armed = run_on_cucc(
        spec,
        make_cluster("simd-focused", 4),
        checkpoint=_policy(tmp_path),
    )
    assert armed.time == bare.time
    assert armed.record.phases == bare.record.phases
    assert armed.runtime.ops.written >= 3


def test_resume_refuses_wrong_workload(tmp_path):
    spec, _, _ = _baseline(tmp_path)
    from repro.workloads import nbody

    other = nbody.build("small")
    with pytest.raises(CheckpointError, match="workload"):
        resume_on_cucc(other, latest_checkpoint(tmp_path / "base"))


def test_resume_refuses_mismatched_launch(tmp_path):
    """Same workload name, different geometry -> resume mismatch."""
    spec = fir.build("small")
    ckdir = tmp_path / "ck"
    with pytest.raises(CheckpointHalt):
        run_on_cucc(
            spec,
            make_cluster("simd-focused", 4),
            checkpoint=_policy(ckdir, halt_after=1),
            app_meta={"workload": spec.name, "size": "small"},
        )
    bigger = fir.build("paper")
    with pytest.raises(CheckpointError, match="resume mismatch"):
        resume_on_cucc(bigger, latest_checkpoint(ckdir))


def test_resume_keeps_checkpoint_numbering(tmp_path):
    """Re-armed checkpointing continues the ordinal sequence."""
    spec = fir.build("small")
    ckdir = tmp_path / "ck"
    with pytest.raises(CheckpointHalt):
        run_on_cucc(
            spec,
            make_cluster("simd-focused", 4),
            checkpoint=_policy(ckdir, halt_after=2),
            app_meta={"workload": spec.name, "size": "small"},
        )
    before = {p.name for p in ckdir.glob("ckpt-*.rckp")}
    res = resume_on_cucc(
        spec, latest_checkpoint(ckdir), checkpoint=_policy(ckdir)
    )
    after = {p.name for p in ckdir.glob("ckpt-*.rckp")}
    assert before < after
    assert res.runtime.ops.written >= 1


# -- backend continuity across restart (serving satellite) ---------------


def _jit_checkpoint(tmp_path, **run_kwargs):
    spec = fir.build("small")
    ckdir = tmp_path / "jit-ck"
    with pytest.raises(CheckpointHalt):
        run_on_cucc(
            spec,
            make_cluster("simd-focused", 4),
            checkpoint=_policy(ckdir, halt_after=1),
            app_meta={"workload": spec.name, "size": "small"},
            backend="jit",
            **run_kwargs,
        )
    return spec, ckdir


def test_jit_run_resumes_on_jit(tmp_path):
    """The checkpoint records its backend; resume honors it by default."""
    spec, ckdir = _jit_checkpoint(tmp_path)
    base = run_on_cucc(spec, make_cluster("simd-focused", 4), backend="jit")
    res = resume_on_cucc(spec, latest_checkpoint(ckdir))
    assert res.runtime.backend == "jit"
    assert res.time == base.time
    assert res.record.phases == base.record.phases


def test_resume_backend_explicit_override(tmp_path):
    """An explicit backend beats the record — and cannot change results
    (the differential gate makes the backends bit-identical)."""
    spec, ckdir = _jit_checkpoint(tmp_path)
    base = run_on_cucc(spec, make_cluster("simd-focused", 4))
    res = resume_on_cucc(spec, latest_checkpoint(ckdir), backend="interp")
    assert res.runtime.backend == "interp"
    assert res.time == base.time
    assert res.record.phases == base.record.phases


def test_resume_pre_backend_checkpoint_falls_back_to_auto(
    tmp_path, monkeypatch
):
    """Checkpoints written before the backend was recorded resume on
    auto (the old behaviour) instead of crashing on the missing key."""
    import repro.ops.resume as resume_mod

    spec, ckdir = _jit_checkpoint(tmp_path)
    real = resume_mod.read_checkpoint

    def stripped(path):
        meta, data = real(path)
        meta["runtime"].pop("backend", None)
        return meta, data

    monkeypatch.setattr(resume_mod, "read_checkpoint", stripped)
    res = resume_on_cucc(spec, latest_checkpoint(ckdir))
    assert res.runtime.backend == "auto"


def test_resume_threads_jit_cache(tmp_path):
    """A compile cache handed to resume seeds the resumed runtime."""
    from repro.interp.jit import CompileCache
    from repro.interp.jit.executor import clear_memo

    spec, ckdir = _jit_checkpoint(tmp_path)
    cache = CompileCache()
    clear_memo()  # force the resumed compile to go through the cache
    res = resume_on_cucc(spec, latest_checkpoint(ckdir), jit_cache=cache)
    assert res.runtime.backend == "jit"
    assert len(cache) > 0  # the resumed compile populated it

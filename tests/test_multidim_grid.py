"""2-D/3-D grid support: linear block-id consistency in the analysis."""

import numpy as np
import pytest

from repro.analysis import analyze_kernel, finalize_plan
from repro.bench.harness import run_on_cucc
from repro.cluster import Cluster
from repro.frontend.parser import parse_kernel
from repro.hw import SIMD_FOCUSED_NODE
from repro.interp import LaunchConfig
from repro.workloads.base import WorkloadSpec

# the idiom 2-D kernels use: explicit x-fastest linearization
IMAGE_SRC = """
__global__ void brighten(const float *img, float *out, int n) {
    int bid = blockIdx.y * gridDim.x + blockIdx.x;
    int gid = bid * blockDim.x + threadIdx.x;
    if (gid < n) out[gid] = img[gid] * 1.5f + 8.0f;
}
"""


def test_linearized_2d_index_accepted():
    a = analyze_kernel(parse_kernel(IMAGE_SRC))
    assert a.metadata.distributable, a.metadata.reasons
    assert a.metadata.tail_divergent
    plan = finalize_plan(
        a, LaunchConfig.make((4, 3), 64), {"n": 4 * 3 * 64}, 3
    )
    assert not plan.replicated
    assert plan.p_size == 4  # 12 blocks over 3 nodes
    assert plan.buffers[0].unit_elems == 64


def test_linearized_2d_cluster_execution():
    gx, gy, block = 5, 4, 32
    n = gx * gy * block - 10  # tail-divergent final block
    rng = np.random.default_rng(0)
    img = rng.random(n).astype(np.float32)
    spec = WorkloadSpec(
        name="brighten2d",
        kernel=parse_kernel(IMAGE_SRC),
        grid=(gx, gy),
        block=block,
        arrays={"img": img, "out": np.zeros(n, dtype=np.float32)},
        scalars={"n": n},
        outputs=("out",),
        reference={"out": img * np.float32(1.5) + np.float32(8.0)},
    )
    res = run_on_cucc(spec, Cluster(SIMD_FOCUSED_NODE, 4),
                      faithful_replication=True)
    assert not res.record.plan.replicated
    assert res.record.plan.full_blocks == gx * gy - 1


def test_mismatched_y_stride_rejected():
    # blockIdx.y advances by the wrong stride: rows would interleave
    src = """
__global__ void k(float *out) {
    int bid = blockIdx.y * (gridDim.x + 1) + blockIdx.x;
    out[bid * blockDim.x + threadIdx.x] = 1.0f;
}
"""
    a = analyze_kernel(parse_kernel(src))
    assert not a.metadata.distributable
    assert any("stride mismatch" in r for r in a.metadata.reasons)


def test_missing_y_term_overlaps_at_launch():
    # a 1-D-indexed kernel launched on a 2-D grid: blocks along y write
    # the same interval -> must fall back to replicated (and stay correct)
    src = """
__global__ void k(float *out, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) out[gid] = 3.0f;
}
"""
    a = analyze_kernel(parse_kernel(src))
    assert a.metadata.distributable  # fine on 1-D grids
    plan = finalize_plan(a, LaunchConfig.make((4, 2), 32), {"n": 128}, 2)
    assert plan.replicated and "overlap" in plan.reason
    # and on a 1-D grid it distributes as usual
    plan1d = finalize_plan(a, LaunchConfig.make(8, 32), {"n": 256}, 2)
    assert not plan1d.replicated


def test_3d_grid_accepted_with_full_linearization():
    src = """
__global__ void k(float *out) {
    int bid = (blockIdx.z * gridDim.y + blockIdx.y) * gridDim.x + blockIdx.x;
    out[bid * blockDim.x + threadIdx.x] = (float)bid;
}
"""
    a = analyze_kernel(parse_kernel(src))
    assert a.metadata.distributable, a.metadata.reasons
    cfg = LaunchConfig.make((3, 2, 2), 16)
    plan = finalize_plan(a, cfg, {}, 2)
    assert not plan.replicated
    assert plan.p_size == 6  # 12 blocks over 2 nodes

    # functional check through the cluster runtime
    n = cfg.num_blocks * 16
    spec = WorkloadSpec(
        name="lin3d",
        kernel=parse_kernel(src),
        grid=(3, 2, 2),
        block=16,
        arrays={"out": np.zeros(n, dtype=np.float32)},
        outputs=("out",),
        reference={"out": np.repeat(
            np.arange(cfg.num_blocks, dtype=np.float32), 16
        )},
    )
    run_on_cucc(spec, Cluster(SIMD_FOCUSED_NODE, 2), faithful_replication=True)

"""Property tests for the Allgather algorithm zoo.

Every zoo member must be *functionally* indistinguishable from the
seed's ring — byte-identical node memories on the same buffers — while
its modeled cost differs.  Hypothesis drives random buffers, rank
counts, payloads and topologies through both claims.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, collectives as coll, make_topology
from repro.cluster.collectives import (
    ALLGATHER_ALGOS,
    allgather_algo_cost,
    allgather_schedule,
)
from repro.cluster.topology import FatTreeTopology, FlatTopology
from repro.errors import ClusterError
from repro.hw import INFINIBAND_100G, SIMD_FOCUSED_NODE

NET = INFINIBAND_100G

TOPOLOGY_BUILDERS = {
    "flat": lambda n: FlatTopology(n, network=NET),
    "fat-tree": lambda n: FatTreeTopology(n, nodes_per_switch=2),
    "ring": lambda n: make_topology("ring", n, network=NET),
    "torus": lambda n: make_topology("torus", n, network=NET),
}


def _cluster_with_random_memory(n, total, seed, topology=None):
    """A cluster whose nodes each hold `total` *distinct* random bytes in
    buffer "d" — so any block a schedule fails to deliver (or delivers to
    the wrong range) leaves a visible difference."""
    cl = Cluster(SIMD_FOCUSED_NODE, n, topology=topology)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(n, total), dtype=np.uint8)
    for r, node in enumerate(cl.nodes):
        node.alloc("d", total, np.uint8)[:] = data[r]
    return cl


def _memories(cl):
    return [node.buffer("d").copy() for node in cl.nodes]


# ---------------------------------------------------------------------------
# schedules deliver exactly the Allgather post-state
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algo", ALLGATHER_ALGOS)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9])
def test_schedule_completes_and_sends_only_held_blocks(algo, n):
    groups = ((tuple(range(n)),) if n < 4
              else tuple(tuple(range(i, min(i + 3, n))) for i in range(0, n, 3)))
    held = [{r} for r in range(n)]
    for rounds in allgather_schedule(algo, n, groups):
        received = []
        for src, dst, blocks in rounds:
            assert src != dst
            assert set(blocks) <= held[src], "rank forwarded a block it lacks"
            received.append((dst, blocks))
        for dst, blocks in received:
            held[dst].update(blocks)
    assert all(h == set(range(n)) for h in held)


@given(
    algo=st.sampled_from(ALLGATHER_ALGOS),
    n=st.integers(2, 9),
)
@settings(max_examples=60, deadline=None)
def test_schedule_never_resends_a_held_block(algo, n):
    """No rank receives a block twice — every algorithm moves the minimal
    n*(n-1) block copies on a flat group (the hierarchical algorithm's
    leader exchange re-ships whole slabs, so it is exempt by design)."""
    held = [{r} for r in range(n)]
    copies = 0
    for rounds in allgather_schedule(algo, n, None):
        for src, dst, blocks in rounds:
            if algo != "hierarchical":
                assert not (set(blocks) & held[dst]), "duplicate delivery"
            copies += len(blocks)
            held[dst].update(blocks)
    if algo != "hierarchical":
        assert copies == n * (n - 1)


# ---------------------------------------------------------------------------
# functional equivalence with ring (the acceptance criterion)
# ---------------------------------------------------------------------------
@given(
    algo=st.sampled_from(ALLGATHER_ALGOS),
    kind=st.sampled_from(sorted(TOPOLOGY_BUILDERS)),
    n=st.integers(2, 6),
    per_rank=st.integers(1, 9),
    base=st.integers(0, 5),
    extra=st.integers(0, 4),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_zoo_is_bit_identical_to_ring(algo, kind, n, per_rank, base, extra, seed):
    total = base + n * per_rank + extra
    topo = TOPOLOGY_BUILDERS[kind](n)
    ref = _cluster_with_random_memory(n, total, seed, topology=topo)
    ref.comm.allgather_in_place("d", base, per_rank, algo="ring")
    got = _cluster_with_random_memory(n, total, seed, topology=topo)
    got.comm.allgather_in_place("d", base, per_rank, algo=algo)
    for a, b in zip(_memories(ref), _memories(got)):
        assert np.array_equal(a, b)


@given(
    algo=st.sampled_from(ALLGATHER_ALGOS),
    n=st.integers(2, 6),
    counts=st.lists(st.integers(0, 7), min_size=2, max_size=6),
    base=st.integers(0, 3),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_allgatherv_zoo_is_bit_identical_to_ring(algo, n, counts, base, seed):
    counts = (counts * n)[:n]
    total = base + sum(counts) + 2
    ref = _cluster_with_random_memory(n, total, seed)
    ref.comm.allgatherv_in_place("d", base, counts, algo="ring")
    got = _cluster_with_random_memory(n, total, seed)
    got.comm.allgatherv_in_place("d", base, counts, algo=algo)
    for a, b in zip(_memories(ref), _memories(got)):
        assert np.array_equal(a, b)


def test_allgather_reconstructs_concatenation_under_every_algo():
    """Direct post-state check (not just ring-relative): every node ends
    holding rank r's slice at offset r — under every algorithm."""
    n, per = 5, 4
    for algo in ALLGATHER_ALGOS:
        cl = Cluster(SIMD_FOCUSED_NODE, n)
        for r, node in enumerate(cl.nodes):
            buf = node.alloc("d", n * per, np.int32)
            buf[r * per:(r + 1) * per] = np.arange(per) + 100 * r
        cl.comm.allgather_in_place("d", 0, per, algo=algo)
        expect = np.concatenate([np.arange(per) + 100 * r for r in range(n)])
        for node in cl.nodes:
            assert np.array_equal(node.buffer("d"), expect), algo


# ---------------------------------------------------------------------------
# cost-model properties
# ---------------------------------------------------------------------------
@given(
    algo=st.sampled_from(ALLGATHER_ALGOS),
    kind=st.sampled_from(sorted(TOPOLOGY_BUILDERS)),
    n=st.integers(2, 12),
    lo_kb=st.floats(0.001, 1e3),
    hi_kb=st.floats(0.001, 1e3),
)
@settings(max_examples=120, deadline=None)
def test_zoo_costs_monotone_in_payload(algo, kind, n, lo_kb, hi_kb):
    lo, hi = sorted((lo_kb, hi_kb))
    topo = TOPOLOGY_BUILDERS[kind](n)
    c_lo = allgather_algo_cost(algo, topo, lo * 1e3)
    c_hi = allgather_algo_cost(algo, topo, hi * 1e3)
    assert 0.0 <= c_lo <= c_hi


@pytest.mark.parametrize("algo", ALLGATHER_ALGOS)
@pytest.mark.parametrize("kind", sorted(TOPOLOGY_BUILDERS))
def test_zoo_cost_edges(algo, kind):
    assert allgather_algo_cost(algo, TOPOLOGY_BUILDERS[kind](1), 1e9) == 0.0
    topo = TOPOLOGY_BUILDERS[kind](8)
    assert allgather_algo_cost(algo, topo, 0.0) == 0.0
    assert allgather_algo_cost(algo, topo, -5.0) == 0.0
    assert allgather_algo_cost(algo, topo, 64e6) > 0.0


def test_ring_on_flat_matches_seed_cost_model():
    """The zoo's ring over a flat topology is *exactly* the seed's
    closed-form (n-1)(alpha + S/(n beta)) — no drift allowed."""
    for n in (2, 3, 8, 17):
        for payload in (1.0, 1e3, 64e6):
            topo = FlatTopology(n, network=NET)
            assert allgather_algo_cost("ring", topo, payload) == pytest.approx(
                coll.allgather_inplace_cost(NET, n, payload), rel=1e-12
            )


def test_zoo_costs_differ_and_selection_is_argmin():
    """On a structured topology the four algorithms price differently,
    and the selector picks the cheapest (the acceptance criterion)."""
    from repro.tuning import select_algorithm
    from repro.tuning.select import algorithm_costs

    topo = FatTreeTopology(num_nodes=8, nodes_per_switch=2)
    for payload in (1e3, 1e6, 64e6):
        costs = algorithm_costs(topo, payload)
        assert len(set(costs.values())) > 1, "zoo costs did not differ"
        best = select_algorithm(topo, payload)
        assert costs[best] == min(costs.values())


def test_unknown_algorithm_rejected():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    for node in cl.nodes:
        node.alloc("d", 8, np.uint8)
    with pytest.raises(ClusterError, match="unknown allgather algorithm"):
        cl.comm.allgather_in_place("d", 0, 4, algo="nope")
    with pytest.raises(ClusterError, match="unknown allgather algorithm"):
        allgather_schedule("nope", 4)

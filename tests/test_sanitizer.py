"""Kernel sanitizer: static race detector + dynamic shadow checks.

Covers the calibration contract of ``repro.sanitize``:

* every bundled workload is clean under both layers (zero false
  positives), and the dynamic layer perturbs neither results nor
  modeled op counts;
* every coverage-zoo kernel the distributable analysis accepts is
  statically clean (the analysis assumes the replication invariant the
  sanitizer checks — a distributable-but-dirty kernel would be a
  soundness bug in one of the two);
* every seeded-violation kernel is caught by the expected layer(s) with
  the expected finding kinds and source-located diagnostics;
* the runtime wiring (``CuCCRuntime(sanitize=True)``) attaches reports
  to compiled kernels and launch records without changing modeled time.
"""

import numpy as np
import pytest

from repro.cluster import make_cluster
from repro.interp import LaunchConfig, OpCounters, run_grid
from repro.runtime import CuCCRuntime
from repro.sanitize import (
    MAX_FINDINGS_PER_KIND,
    DynamicSanitizer,
    Finding,
    FindingKind,
    SanitizerReport,
    analyze_kernel,
    sanitize_kernel,
    sanitize_launch,
    sanitize_spec,
)
from repro.sanitize.violations import VIOLATIONS
from repro.transform import simplify_kernel
from repro.workloads import EXTRA_WORKLOADS, PERF_WORKLOADS
from repro.workloads.ai_models import AI_KERNELS
from repro.workloads.heteromark import HETEROMARK_KERNELS, build_kernel

CATALOG = {**PERF_WORKLOADS, **EXTRA_WORKLOADS}
ALL_ZOO = HETEROMARK_KERNELS + AI_KERNELS


# ---------------------------------------------------------------------------
# report container
# ---------------------------------------------------------------------------
def _finding(i=0, kind=FindingKind.SHARED_RACE, msg="conflict"):
    return Finding(kind=kind, layer="static", kernel="k", message=msg,
                   line=i, snippet="s[0] = tid;")


def test_report_deduplicates_repeats():
    r = SanitizerReport("k")
    for _ in range(5):
        r.add(_finding(3))
    assert len(r.findings) == 1
    assert r.count_of(r.findings[0]) == 5
    assert "(x5)" in r.describe()
    assert not r.clean


def test_report_caps_distinct_findings_per_kind():
    r = SanitizerReport("k")
    for i in range(MAX_FINDINGS_PER_KIND + 7):
        r.add(_finding(i))
    assert len(r.findings) == MAX_FINDINGS_PER_KIND
    assert r.truncated == 7
    assert "truncated" in r.describe()
    # other kinds have their own budget
    r.add(_finding(0, kind=FindingKind.OOB_GLOBAL))
    assert FindingKind.OOB_GLOBAL in r.kinds()


def test_report_merge_preserves_counts():
    a, b = SanitizerReport("k"), SanitizerReport("k")
    a.add(_finding(1))
    b.add(_finding(1))
    b.add(_finding(2))
    a.merge(b)
    assert a.count_of(_finding(1)) == 2
    assert len(a.findings) == 2


def test_clean_report_describe():
    r = SanitizerReport("fir")
    assert r.clean
    assert "clean" in r.describe()


# ---------------------------------------------------------------------------
# zero false positives on bundled workloads
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(CATALOG), ids=str)
def test_workload_static_clean(name):
    spec = CATALOG[name]("small")
    assert analyze_kernel(spec.kernel).clean
    # the simplified IR the runtime executes must be clean too
    assert analyze_kernel(simplify_kernel(spec.kernel)).clean


@pytest.mark.parametrize("name", sorted(CATALOG), ids=str)
def test_workload_dynamic_clean(name):
    spec = CATALOG[name]("small")
    report = sanitize_spec(spec)
    assert report.clean, report.describe()


def test_sanitize_mode_does_not_change_results_or_counts():
    spec = CATALOG["FIR"]("small")
    cfg = LaunchConfig.make(spec.grid, spec.block)
    runs = {}
    for san in (False, True):
        arrays = {k: v.copy() for k, v in spec.arrays.items()}
        counters = OpCounters()
        run_grid(spec.kernel, cfg, {**arrays, **spec.scalars},
                 counters=counters, sanitize=san)
        runs[san] = (arrays, counters)
    for out in spec.outputs:
        np.testing.assert_array_equal(runs[False][0][out], runs[True][0][out])
    assert runs[False][1] == runs[True][1]


# ---------------------------------------------------------------------------
# cross-validation against the distributable analysis
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("z", ALL_ZOO, ids=lambda z: z.name)
def test_zoo_distributable_implies_statically_clean(z):
    from repro.analysis import analyze_kernel as distributable_analysis

    kernel = build_kernel(z)
    report = sanitize_kernel(kernel)
    if distributable_analysis(kernel).metadata.distributable:
        assert report.clean, (
            f"{z.name} is Allgather-distributable but the sanitizer found:\n"
            + report.describe()
        )


def test_violating_kernels_are_not_distributable_when_replication_broken():
    from repro.analysis import analyze_kernel as distributable_analysis

    case = VIOLATIONS["cross_block"]
    k = case.kernel()
    assert not distributable_analysis(k).metadata.distributable
    assert FindingKind.NON_REPLICATED_WRITE in sanitize_kernel(k).kinds()


# ---------------------------------------------------------------------------
# seeded violations: both layers, with source locations
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(VIOLATIONS), ids=str)
def test_violation_static_layer(name):
    case = VIOLATIONS[name]
    report = sanitize_kernel(case.kernel())
    assert case.expect_static <= report.kinds(), report.describe()
    if not case.expect_static:
        assert report.clean, report.describe()
    for f in report.findings:
        assert f.layer == "static"
        assert f.line is not None and f.line > 0
        assert f.snippet


@pytest.mark.parametrize("name", sorted(VIOLATIONS), ids=str)
def test_violation_dynamic_layer(name):
    case = VIOLATIONS[name]
    report = sanitize_launch(
        case.kernel(), case.grid, case.block, case.make_args()
    )
    assert case.expect_dynamic <= report.kinds(), report.describe()
    for f in report.findings:
        assert f.layer == "dynamic"
        assert f.line is not None and f.line > 0
        assert f.snippet


def test_violation_classes_cover_requirement():
    """At least three distinct hazard classes are demonstrably caught."""
    caught = set()
    for case in VIOLATIONS.values():
        caught |= case.expect_static | case.expect_dynamic
    assert len(caught) >= 3


def test_survived_simplification():
    """Static findings keep their source lines on the lowered IR the
    runtime actually executes."""
    case = VIOLATIONS["missing_barrier"]
    report = sanitize_kernel(simplify_kernel(case.kernel()))
    assert case.expect_static <= report.kinds()
    assert all(f.line is not None for f in report.findings)


# ---------------------------------------------------------------------------
# dynamic layer specifics
# ---------------------------------------------------------------------------
def test_oob_is_reported_not_raised_under_sanitizer():
    case = VIOLATIONS["oob_global"]
    kernel = case.kernel()
    cfg = LaunchConfig.make(case.grid, case.block)
    # without the sanitizer, bounds checking raises with located context
    from repro.errors import InterpError

    with pytest.raises(InterpError, match=r"out-of-bounds.*'y'.*threadIdx"):
        run_grid(kernel, cfg, case.make_args())
    # with it, the launch completes and the fault becomes a finding
    ex = run_grid(kernel, cfg, case.make_args(), sanitize=True)
    assert FindingKind.OOB_GLOBAL in ex.sanitizer.report.kinds()


def test_shared_sanitizer_accumulates_across_launches():
    case = VIOLATIONS["uninit_shared"]
    report = sanitize_launch(
        case.kernel(), case.grid, case.block, case.make_args()
    )
    again = sanitize_launch(
        case.kernel(), case.grid, case.block, case.make_args(), report=report
    )
    assert again is report
    f = report.by_kind(FindingKind.UNINIT_SHARED)[0]
    assert report.count_of(f) >= 2  # same site, counted per occurrence


def test_noop_rewrites_are_exempt():
    """Blocks overwriting a cell with the value already present (the
    replication pattern) must not race."""
    from repro.frontend.parser import parse_kernel

    k = parse_kernel("""
__global__ void rewrite(float* y, int n) {
    y[threadIdx.x] = 1.0f;
}""")
    # every block writes 1.0 to the same cells: replicated, benign
    report = sanitize_launch(k, 4, 32, {"y": np.ones(32, np.float32), "n": 0})
    assert report.clean, report.describe()


# ---------------------------------------------------------------------------
# runtime wiring
# ---------------------------------------------------------------------------
def _run_on_runtime(spec, sanitize):
    rt = CuCCRuntime(make_cluster("simd-focused", 4), sanitize=sanitize)
    for k, v in spec.arrays.items():
        rt.memory.alloc(k, v.size, v.dtype)
        rt.memory.memcpy_h2d(k, v)
    compiled = rt.compile(spec.kernel)
    record = rt.launch(compiled, spec.grid, spec.block, spec.args())
    spec.verify({
        o: rt.memory.memcpy_d2h(o, check_consistency=True)
        for o in spec.outputs
    })
    return compiled, record


def test_runtime_attaches_reports_and_keeps_times():
    spec = CATALOG["FIR"]("small")
    compiled_off, record_off = _run_on_runtime(spec, sanitize=False)
    compiled_on, record_on = _run_on_runtime(spec, sanitize=True)
    assert compiled_off.sanitizer_report is None
    assert record_off.sanitizer_report is None
    assert compiled_on.sanitizer_report.clean
    assert record_on.sanitizer_report.clean
    assert record_on.time == record_off.time


def test_runtime_catches_non_replicated_launch():
    case = VIOLATIONS["cross_block"]
    rt = CuCCRuntime(make_cluster("simd-focused", 2), sanitize=True)
    args = case.make_args()
    for name, v in args.items():
        if isinstance(v, np.ndarray):
            rt.memory.alloc(name, v.size, v.dtype)
            rt.memory.memcpy_h2d(name, v)
    compiled = rt.compile(case.kernel())
    assert FindingKind.NON_REPLICATED_WRITE in compiled.sanitizer_report.kinds()
    record = rt.launch(
        compiled, case.grid, case.block,
        {n: (n if isinstance(v, np.ndarray) else v) for n, v in args.items()},
    )
    assert FindingKind.NON_REPLICATED_WRITE in record.sanitizer_report.kinds()


def test_dynamic_sanitizer_shared_across_executors():
    """One sanitizer fed by several executors keeps one set of shadows."""
    case = VIOLATIONS["cross_block"]
    kernel = case.kernel()
    cfg = LaunchConfig.make(case.grid, case.block)
    san = DynamicSanitizer(kernel.name)
    run_grid(kernel, cfg, case.make_args(), sanitize=san)
    run_grid(kernel, cfg, case.make_args(), sanitize=san)
    assert FindingKind.NON_REPLICATED_WRITE in san.report.kinds()

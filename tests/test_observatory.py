"""The serving observatory: fleet ledger, SLO monitor, flight recorder,
and ``repro explain`` regression attribution (DESIGN.md §15).

The layer's contract has three legs, each pinned here:

* **zero overhead off** — a server built without the observatory never
  imports the modules and serves bit-identically to one with them on;
* **determinism on** — the ledger, the SLO event stream, the exported
  counter tracks and every dumped post-mortem byte are stable per seed;
* **faithful accounting** — series/attribution reconstruct the packer's
  occupancy exactly, the explain decomposition reproduces each job's
  latency to the bit, and wreck time never counts as useful work.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from trace_schema import validate_chrome_trace

from repro.cli import main as cli_main
from repro.errors import ReproError, ServeError
from repro.obs.explain import explain, format_explain_report
from repro.obs.observatory import (
    Observatory,
    format_postmortem,
    validate_postmortem,
)
from repro.obs.slo import SLOEvent, SLOMonitor, SLOPolicy
from repro.serve import (
    CuCCServer,
    JobRequest,
    ServeConfig,
    percentile,
    serve_requests,
    serve_serially,
    synth_requests,
    verify_against_serial,
)

DOOMED = "crash:rank=0,phase=partial"


def _mixed_requests(jobs=6, **kw):
    kw.setdefault("nodes", 2)
    return synth_requests("FIR:2,KMeans:1,Transpose:1", rate=2e6,
                          jobs=jobs, seed=0, **kw)


def _write_trace(tmp_path, name, **config_kw):
    from repro.obs.export import write_chrome_trace

    config_kw.setdefault("nodes", 6)
    server = CuCCServer(ServeConfig(trace=True, **config_kw))
    server.run(_mixed_requests(jobs=8))
    return write_chrome_trace(server.tracer, tmp_path / name)


# -- the ledger ---------------------------------------------------------


def test_ledger_records_and_ring_is_bounded():
    obs = Observatory(pool_nodes=4, ring=3)
    for i in range(5):
        obs.record("arrival", float(i), job_id="j", nodes=2)
    assert len(obs.events) == 5
    assert [e.seq for e in obs.events] == [0, 1, 2, 3, 4]
    ring = obs.events_for("j")
    assert [e.t for e in ring] == [2.0, 3.0, 4.0]  # last `ring` only
    assert obs.events_for("nobody") == []
    assert "arrival job j" in obs.events[0].describe()


def test_series_coalesce_equal_timestamps_and_sort_by_time():
    obs = Observatory(pool_nodes=4)
    # recorded out of order (suspend/resume land ahead of their instants
    # in the real loop); analysis must sort by (t, seq)
    obs.record("lease", 1.0, job_id="a", node_ids=(0, 1))
    obs.record("arrival", 0.0, job_id="a")
    obs.record("arrival", 1.0, job_id="b")
    obs.record("lease", 1.0, job_id="b", node_ids=(2, 3))
    obs.record("release", 2.0, job_id="a", node_ids=(0, 1))
    assert obs.busy_series() == [(1.0, 4), (2.0, 2)]
    # both t=1.0 queue changes coalesce into the final value at t=1.0
    assert obs.queue_series() == [(0.0, 1), (1.0, 0)]
    assert obs.makespan_s == 2.0


def test_idle_attribution_charges_packing_vs_empty_queue():
    obs = Observatory(pool_nodes=4)
    obs.record("arrival", 0.0, job_id="wide")
    obs.record("lease", 0.0, job_id="wide", node_ids=(0, 1, 2))
    obs.record("arrival", 0.0, job_id="head")  # wants more than 1 node
    obs.record("release", 2.0, job_id="wide", node_ids=(0, 1, 2))
    obs.record("lease", 2.0, job_id="head", node_ids=(0, 1))
    obs.record("release", 3.0, job_id="head", node_ids=(0, 1))
    att = obs.idle_attribution()
    # [0,2): 3 busy, 1 free while 'head' queued -> packing; [2,3): 2
    # busy, 2 free with an empty queue
    assert att == {"busy": 8.0, "packing": 2.0, "empty_queue": 2.0}
    assert sum(att.values()) == obs.pool_nodes * obs.makespan_s


def test_node_intervals_track_lease_shrink_release():
    obs = Observatory(pool_nodes=4)
    obs.record("lease", 0.0, job_id="a", node_ids=(0, 1, 2))
    obs.record("shrink", 1.0, job_id="a", node_ids=(2,))
    obs.record("release", 2.0, job_id="a", node_ids=(0, 1))
    iv = obs.node_intervals()
    assert iv[2] == [(0.0, 1.0, "a")]
    assert iv[0] == iv[1] == [(0.0, 2.0, "a")]


def test_fleet_ledger_matches_packer_truth_end_to_end():
    reqs = _mixed_requests(jobs=8)
    rep = serve_requests(reqs, ServeConfig(nodes=6, observatory=True))
    obs = rep.fleet
    assert obs is not None
    kinds = {e.kind for e in obs.events}
    assert {"arrival", "lease", "finish", "release"} <= kinds
    assert len([e for e in obs.events if e.kind == "arrival"]) == len(reqs)
    # occupancy never exceeds the pool and ends drained
    busy = obs.busy_series()
    assert all(0 <= v <= 6 for _, v in busy)
    assert busy[-1][1] == 0
    assert obs.queue_series()[-1][1] == 0
    att = obs.idle_attribution()
    assert sum(att.values()) == pytest.approx(6 * obs.makespan_s)
    # the ledger's busy node-seconds are the packer's occupancy truth:
    # the series integral equals the per-node interval durations, and
    # never exceeds the useful-work numerator (overlapped successors
    # share their owner's occupancy, which is why utilization can top
    # 1.0 while the ledger cannot)
    occupancy = sum(
        t1 - t0
        for ivs in obs.node_intervals().values() for t0, t1, _ in ivs
    )
    assert att["busy"] == pytest.approx(occupancy)
    useful = sum(r.profile.total_s * r.request.nodes for r in rep.results)
    assert att["busy"] <= useful + 1e-12
    report = rep.format_report()
    assert "fleet:" in report and "node-seconds:" in report
    gantt = obs.gantt(rep.results)
    assert all(r.request.job_id in gantt for r in rep.results)
    assert "legend:" in gantt


def test_observatory_off_is_bit_identical_and_unloaded():
    reqs = _mixed_requests(jobs=5, faults=DOOMED, fault_every=3)
    off = serve_requests(reqs, ServeConfig(nodes=6))
    on = serve_requests(reqs, ServeConfig(nodes=6, observatory=True))
    assert off.fleet is None and on.fleet is not None
    assert [r.identity() for r in off.results] == \
        [r.identity() for r in on.results]
    assert [r.timing for r in off.results] == [r.timing for r in on.results]
    assert off.stats == on.stats


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 2**16), pipeline=st.booleans())
def test_property_observatory_never_perturbs_the_simulation(seed, pipeline):
    reqs = synth_requests("FIR:1,KMeans:1", rate=2e6, jobs=4, nodes=2,
                          seed=seed)
    off = serve_requests(reqs, ServeConfig(nodes=4, pipeline=pipeline))
    on = serve_requests(
        reqs,
        ServeConfig(nodes=4, pipeline=pipeline, observatory=True,
                    slo="latency<=1e-9"),  # breach storm changes nothing
    )
    assert [r.identity() for r in off.results] == \
        [r.identity() for r in on.results]
    assert off.stats.makespan_s == on.stats.makespan_s


# -- counter tracks in the trace ----------------------------------------


def test_counter_tracks_exported_and_byte_identical(tmp_path):
    a = _write_trace(tmp_path, "a.json", observatory=True)
    b = _write_trace(tmp_path, "b.json", observatory=True)
    assert a.read_bytes() == b.read_bytes()
    obj = json.loads(a.read_text())
    assert validate_chrome_trace(obj) == []
    counters = [e for e in obj["traceEvents"] if e["ph"] == "C"]
    names = {e["name"] for e in counters}
    assert {"fleet.busy_nodes", "fleet.queue_depth"} <= names
    # counter samples carry numeric-only args on the simulated clock
    assert all(isinstance(e["args"]["value"], (int, float))
               for e in counters)


def test_trace_with_observatory_only_adds_events(tmp_path):
    plain = json.loads(_write_trace(tmp_path, "p.json").read_text())
    obs = json.loads(
        _write_trace(tmp_path, "o.json", observatory=True).read_text()
    )
    assert validate_chrome_trace(plain) == []
    plain_keys = [(e["ph"], e.get("name")) for e in plain["traceEvents"]]
    obs_keys = [(e["ph"], e.get("name")) for e in obs["traceEvents"]]
    # the shared prefix is untouched; counters append after job spans
    assert obs_keys[: len(plain_keys)] == plain_keys
    assert {k for k in obs_keys[len(plain_keys):]} == {
        ("C", "fleet.busy_nodes"), ("C", "fleet.queue_depth")
    }


# -- SLO policy + monitor -----------------------------------------------


def test_slo_policy_parse_roundtrip():
    p = SLOPolicy.parse(
        "wait<=2e-6,latency<=1e-5,util>=0.5,window=4,budget=0.5,burn=1.5"
    )
    assert (p.max_wait_s, p.max_latency_s, p.min_utilization) == \
        (2e-6, 1e-5, 0.5)
    assert (p.window, p.budget, p.breach_burn) == (4, 0.5, 1.5)
    assert "wait<=2e-06s" in p.describe()


@pytest.mark.parametrize("bad", [
    "", "latency", "latency<=x", "rainbows<=3", "latency<=1e-5,window=0",
    "latency<=1e-5,budget=0", "latency<=1e-5,burn=0.5",
])
def test_slo_policy_rejects(bad):
    with pytest.raises(ServeError):
        SLOPolicy.parse(bad)


def test_slo_monitor_burn_rate_escalation_and_dedup():
    mon = SLOMonitor(SLOPolicy(max_latency_s=1.0, window=4, budget=0.25))
    # one violation in a window of 1 -> burn 4.0 -> straight to breach
    evs = mon.observe(1.0, "j0", wait_s=0.0, latency_s=2.0)
    assert [e.level for e in evs] == ["breach"]
    assert evs[0].burn == pytest.approx(4.0)
    assert evs[0].objective == "latency" and evs[0].job_id == "j0"
    # further violations at the same level emit nothing (dedup)
    assert mon.observe(2.0, "j1", wait_s=0.0, latency_s=3.0) == []
    # recovery de-escalates silently and re-arms emission
    for i in range(4):
        assert mon.observe(3.0 + i, f"ok{i}", 0.0, 0.5) == []
    evs = mon.observe(9.0, "j2", wait_s=0.0, latency_s=2.0)
    assert [e.level for e in evs] == ["warn"]  # 1/4 violating = burn 1.0
    assert mon.breached and mon.warned


def test_slo_monitor_finalize_checks_utilization_floor():
    mon = SLOMonitor(SLOPolicy(min_utilization=0.8))
    assert mon.finalize(10.0, 0.9) == []
    evs = mon.finalize(10.0, 0.2)
    assert [e.objective for e in evs] == ["utilization"]
    assert evs[0].level == "breach" and evs[0].burn == pytest.approx(4.0)
    assert "utilization 0.2 vs >= 0.8" in evs[0].describe()


def test_serve_with_slo_reports_and_traces_breaches(tmp_path):
    from repro.obs.metrics import METRICS

    METRICS.reset()
    server = CuCCServer(ServeConfig(
        nodes=6, trace=True, slo="wait<=1e-9,latency<=1e-9",
    ))
    rep = server.run(_mixed_requests(jobs=6))
    assert rep.slo_breached
    levels = [e.level for e in rep.slo_events]
    assert "breach" in levels
    assert rep.fleet is not None  # --slo implies the observatory
    assert METRICS.total("serve.slo_breachs") >= 1
    # breaches are trace instants in their own "slo" category
    obj = json.loads(_trace_text(server, tmp_path / "slo.json"))
    slo_events = [e for e in obj["traceEvents"] if e.get("cat") == "slo"]
    assert slo_events and all(e["ph"] == "i" for e in slo_events)
    assert validate_chrome_trace(obj) == []
    assert "SLO" in rep.format_report() and "BREACHED" in rep.format_report()
    METRICS.reset()


def _trace_text(server, path):
    from repro.obs.export import write_chrome_trace

    return write_chrome_trace(server.tracer, path).read_text()


def test_serve_without_slo_emits_no_events():
    rep = serve_requests(_mixed_requests(jobs=4),
                         ServeConfig(nodes=6, observatory=True))
    assert rep.slo_events == [] and not rep.slo_breached


# -- wreck accounting (satellite a) -------------------------------------


def test_utilization_excludes_terminal_wreck_time():
    reqs = [
        JobRequest("ok-0", "FIR", nodes=2, arrival_s=0.0),
        JobRequest("doomed", "FIR", nodes=1, arrival_s=0.0, faults=DOOMED),
    ]
    rep = serve_requests(reqs, ServeConfig(nodes=3))
    s = rep.stats
    assert s.failed == 1
    by_id = {r.request.job_id: r for r in rep.results}
    wreck = by_id["doomed"]
    denom = 3 * s.makespan_s
    assert s.wrecked == pytest.approx(
        wreck.profile.total_s * 1 / denom
    )
    assert s.wrecked > 0
    # useful-work density counts ok jobs only
    ok = by_id["ok-0"]
    assert s.utilization == pytest.approx(ok.profile.total_s * 2 / denom)
    assert "wrecked by failed jobs" in rep.format_report()


def test_clean_run_reports_zero_wrecked():
    rep = serve_requests(_mixed_requests(jobs=3), ServeConfig(nodes=4))
    assert rep.stats.wrecked == 0.0
    assert "wrecked" not in rep.format_report()


# -- percentile definitions (satellite b) -------------------------------


def test_percentile_interpolated_vs_nearest_rank():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile(vals, 50) == 2.0  # nearest-rank
    assert percentile(vals, 50, interpolated=True) == 2.5
    assert percentile(vals, 99, interpolated=True) == pytest.approx(3.97)
    assert percentile(vals, 0, interpolated=True) == 1.0
    assert percentile(vals, 100, interpolated=True) == 4.0
    with pytest.raises(ValueError):
        percentile([], 50, interpolated=True)
    with pytest.raises(ValueError):
        percentile(vals, 101)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                max_size=21).filter(lambda v: len(v) % 2 == 1))
def test_property_percentile_definitions_agree_at_odd_median(vals):
    # on odd-length sequences both definitions hit the middle element
    assert percentile(vals, 50) == percentile(vals, 50, interpolated=True)


# -- flight recorder + post-mortems (tentpole leg 3) --------------------


def _doomed_run(tmp_path=None, **kw):
    reqs = [
        JobRequest("ok-0", "FIR", nodes=2, arrival_s=0.0),
        JobRequest("doomed", "Transpose", nodes=1, arrival_s=0.0,
                   faults=DOOMED),
    ]
    config = ServeConfig(
        nodes=3, observatory=True,
        postmortem_dir=str(tmp_path) if tmp_path else None, **kw,
    )
    server = CuCCServer(config)
    return server, server.run(reqs)


def test_terminal_failure_dumps_schema_valid_postmortem(tmp_path):
    server, rep = _doomed_run(tmp_path)
    assert [d["job_id"] for d in rep.postmortems] == ["doomed"]
    doc = rep.postmortems[0]
    assert doc["reason"] == "terminal-failure"
    assert doc["status"] == "failed"
    assert "unrecoverable" in doc["error"]
    assert validate_postmortem(doc) == []
    kinds = [e["kind"] for e in doc["events"]]
    assert kinds.count("wreck") == 1 and "lease" in kinds
    assert doc["context"]["pool_nodes"] == 3
    # the dump landed on disk byte-for-byte as the in-memory doc
    (path,) = server.postmortem_paths
    on_disk = json.loads(open(path).read())
    assert on_disk == json.loads(json.dumps(doc))
    # and the pretty-printer renders it without error
    text = format_postmortem(on_disk)
    assert "job doomed — terminal-failure" in text
    assert "wreck" in text
    assert "flight recorder" in rep.format_report()


def test_postmortem_dumps_are_deterministic(tmp_path):
    (tmp_path / "a").mkdir(), (tmp_path / "b").mkdir()
    _doomed_run(tmp_path / "a")
    _doomed_run(tmp_path / "b")
    assert (tmp_path / "a" / "postmortem-doomed.json").read_bytes() == \
        (tmp_path / "b" / "postmortem-doomed.json").read_bytes()


def test_slo_hard_breach_triggers_the_flight_recorder():
    server, rep = _doomed_run(slo="latency<=1e-9,window=1")
    reasons = {d["reason"] for d in rep.postmortems}
    assert "slo-breach" in reasons
    for doc in rep.postmortems:
        assert validate_postmortem(doc) == []


def test_validate_postmortem_rejects_malformed():
    assert validate_postmortem([]) != []
    assert any("format_version" in p for p in validate_postmortem({}))
    doc = Observatory(pool_nodes=2).postmortem("j")
    assert validate_postmortem(doc) == []
    doc["events"] = [{"t_s": "soon", "kind": "teleport"}]
    problems = validate_postmortem(doc)
    assert any("t_s" in p for p in problems)
    assert any("teleport" in p for p in problems)


def test_healthy_run_dumps_nothing(tmp_path):
    server = CuCCServer(ServeConfig(nodes=6, observatory=True,
                                    postmortem_dir=str(tmp_path)))
    rep = server.run(_mixed_requests(jobs=4))
    assert rep.postmortems == [] and server.postmortem_paths == []
    assert list(tmp_path.iterdir()) == []


# -- repro explain (tentpole leg 4) -------------------------------------


def test_explain_same_seed_reports_zero_delta(tmp_path):
    a = _write_trace(tmp_path, "a.json")
    b = _write_trace(tmp_path, "b.json")
    rep = explain(a, b)
    assert rep.mode == "serve" and rep.matched == 8
    assert rep.zero_delta
    assert rep.total_delta_s == 0.0
    assert "zero delta" in format_explain_report(rep)


def test_explain_attributes_p99_to_allgather_overlap(tmp_path):
    serial = _write_trace(tmp_path, "serial.json", pipeline=False)
    pipe = _write_trace(tmp_path, "pipe.json", pipeline=True)
    rep = explain(serial, pipe)
    assert rep.newly_overlapped > 0
    assert rep.hidden_delta_s > 0
    assert rep.latency_p99_b < rep.latency_p99_a
    assert rep.total_delta_s < 0  # B is the faster run
    assert "allgather-window overlap" in rep.attribution
    text = format_explain_report(rep)
    assert "allgather-window overlap" in text
    # the decomposition is exact: category deltas sum to the latency
    # delta to the bit (latency = wait + pre + allgather + post + stall)
    assert sum(rep.deltas.values()) == pytest.approx(
        rep.total_delta_s, abs=1e-15
    )


def test_explain_decomposition_reproduces_each_latency(tmp_path):
    from repro.obs.explain import _serve_jobs

    doc = json.loads(_write_trace(tmp_path, "t.json").read_text())
    jobs = _serve_jobs(doc)
    assert len(jobs) == 8
    for job in jobs.values():
        parts = (job["queue_wait"] + job["compute"] + job["recovery"]
                 + job["allgather"] + job["callback"] + job["stall"])
        assert parts == pytest.approx(job["latency"], abs=1e-15)


def test_explain_launch_traces_align_by_kernel(tmp_path):
    from repro.bench.harness import run_on_cucc
    from repro.cluster import make_cluster
    from repro.obs.export import write_chrome_trace
    from repro.workloads import PERF_WORKLOADS

    def trace(nodes, name):
        spec = PERF_WORKLOADS["KMeans"]("small", seed=0)
        res = run_on_cucc(spec, make_cluster("simd-focused", nodes),
                          trace=True)
        return write_chrome_trace(res.runtime.tracer, tmp_path / name)

    a = trace(2, "a.json")
    b = trace(4, "b.json")
    rep = explain(a, b)
    assert rep.mode == "launch" and rep.matched > 0
    assert not rep.zero_delta
    assert "driver" in rep.attribution


def test_explain_bench_documents_diff_metrics(tmp_path):
    def bench(path, extra):
        doc = {"schema_version": 1, "name": "x",
               "metrics": {"lat": 1.0 + extra, "flat": 2.0}}
        path.write_text(json.dumps(doc))
        return path

    a = bench(tmp_path / "a.json", 0.0)
    b = bench(tmp_path / "b.json", 0.5)
    rep = explain(a, b)
    assert rep.mode == "bench"
    assert rep.deltas == {"lat": 0.5, "flat": 0.0}
    text = format_explain_report(rep)
    assert "lat" in text and "flat" not in text  # flat metrics skipped


def test_explain_rejects_mismatched_and_bogus_inputs(tmp_path):
    trace = _write_trace(tmp_path, "t.json")
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"schema_version": 1, "metrics": {}}))
    with pytest.raises(ReproError, match="cannot explain"):
        explain(trace, bench)
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    with pytest.raises(ReproError, match="neither"):
        explain(bogus, bogus)
    with pytest.raises(ReproError, match="no such file"):
        explain(tmp_path / "nope.json", trace)


# -- CLI ----------------------------------------------------------------


def test_cli_serve_slo_breach_exits_4(tmp_path, capsys):
    rc = cli_main([
        "serve", "--jobs", "6", "--nodes", "6",
        "--slo", "wait<=1e-9,latency<=1e-9",
        "--postmortem", str(tmp_path / "pm"),
    ])
    out = capsys.readouterr().out
    assert rc == 4
    assert "SLO BREACHED (exit status 4)" in out
    assert "fleet:" in out  # --slo implies the observatory report
    dumps = sorted((tmp_path / "pm").glob("postmortem-*.json"))
    assert dumps
    # the dumped files render cleanly through the postmortem CLI
    rc = cli_main(["postmortem", str(dumps[0])])
    assert rc == 0
    assert "post-mortem (format v1)" in capsys.readouterr().out


def test_cli_serve_healthy_slo_exits_0(capsys):
    rc = cli_main([
        "serve", "--jobs", "4", "--nodes", "8",
        "--slo", "latency<=1.0", "--observatory",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fleet:" in out and "legend:" in out


def test_cli_explain_and_postmortem_reject_garbage(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    assert cli_main(["explain", str(bogus), str(bogus)]) == 1
    assert "neither" in capsys.readouterr().err
    assert cli_main(["postmortem", str(bogus)]) == 1
    assert "INVALID post-mortem" in capsys.readouterr().err
    assert cli_main(["postmortem", str(tmp_path / "nope.json")]) == 1


def test_cli_explain_zero_delta_and_overlap(tmp_path, capsys):
    common = ["serve", "--jobs", "6", "--nodes", "6"]
    assert cli_main(common + ["--trace", str(tmp_path / "a.json")]) == 0
    assert cli_main(common + ["--trace", str(tmp_path / "b.json")]) == 0
    assert cli_main(common + ["--no-pipeline",
                              "--trace", str(tmp_path / "s.json")]) == 0
    capsys.readouterr()
    rc = cli_main(["explain", str(tmp_path / "a.json"),
                   str(tmp_path / "b.json")])
    assert rc == 0
    assert "zero delta" in capsys.readouterr().out
    rc = cli_main(["explain", str(tmp_path / "s.json"),
                   str(tmp_path / "a.json")])
    assert rc == 0
    assert "allgather-window overlap" in capsys.readouterr().out

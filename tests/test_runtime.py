"""CuCC runtime: memory manager, three-phase launches, consistency."""

import numpy as np
import pytest

from repro.cluster import Cluster, make_cluster
from repro.errors import LaunchError, DeviceMemoryError
from repro.frontend.parser import parse_kernel
from repro.hw import SIMD_FOCUSED_NODE
from repro.runtime import CuCCRuntime
from repro.runtime.memory_manager import ClusterMemory

VEC_COPY = """
__global__ void vec_copy(const char *src, char *dest, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) dest[id] = src[id];
}
"""

HIST = """
__global__ void hist(const int *d, int *bins, int n) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) atomicAdd(&bins[d[id]], 1);
}
"""


# ---------------------------------------------------------------------------
# ClusterMemory
# ---------------------------------------------------------------------------
def test_memory_manager_replication():
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    mem = ClusterMemory(cl)
    mem.alloc("x", 10, np.float32)
    host = np.arange(10, dtype=np.float32)
    mem.memcpy_h2d("x", host)
    for node in cl.nodes:
        assert np.array_equal(node.buffer("x"), host)
    assert mem.consistent("x")
    out = mem.memcpy_d2h("x", check_consistency=True)
    assert np.array_equal(out, host)
    assert mem.size_of("x") == 10 and mem.dtype_of("x") == np.float32
    assert mem.buffer_names == ["x"]
    assert mem.total_bytes_per_node() == 40


def test_memory_manager_detects_divergence():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    mem = ClusterMemory(cl)
    mem.alloc("x", 4, np.int32)
    cl.nodes[1].buffer("x")[2] = 5  # simulate a consistency bug
    assert not mem.consistent("x")
    with pytest.raises(DeviceMemoryError, match="diverge"):
        mem.memcpy_d2h("x", check_consistency=True)


def test_memory_manager_errors():
    cl = Cluster(SIMD_FOCUSED_NODE, 1)
    mem = ClusterMemory(cl)
    mem.alloc("x", 4, np.int32)
    with pytest.raises(DeviceMemoryError):
        mem.alloc("x", 4, np.int32)
    with pytest.raises(DeviceMemoryError):
        mem.alloc("zero", 0, np.int32)
    with pytest.raises(DeviceMemoryError):
        mem.memcpy_h2d("x", np.zeros(3, np.int32))  # size mismatch
    with pytest.raises(DeviceMemoryError):
        mem.memcpy_h2d("x", np.zeros(4, np.int64))  # dtype mismatch
    with pytest.raises(DeviceMemoryError):
        mem.memcpy_d2h("nope")
    mem.free("x")
    with pytest.raises(DeviceMemoryError):
        mem.free("x")


def test_memory_nan_replicas_are_consistent():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    mem = ClusterMemory(cl)
    mem.alloc("x", 2, np.float32)
    host = np.array([np.nan, 1.0], dtype=np.float32)
    mem.memcpy_h2d("x", host)
    assert mem.consistent("x")


# ---------------------------------------------------------------------------
# three-phase launches
# ---------------------------------------------------------------------------
def _launch_vec_copy(nodes, n=1200, grid=5, block=256, **kw):
    cl = Cluster(SIMD_FOCUSED_NODE, nodes)
    rt = CuCCRuntime(cl, **kw)
    rt.memory.alloc("src", n, np.int8)
    rt.memory.alloc("dest", n, np.int8)
    host = (np.arange(n) % 100).astype(np.int8)
    rt.memory.memcpy_h2d("src", host)
    rec = rt.launch(rt.compile(parse_kernel(VEC_COPY)), grid, block,
                    {"src": "src", "dest": "dest", "n": n})
    out = rt.memory.memcpy_d2h("dest", check_consistency=True)
    assert np.array_equal(out, host)
    return rt, rec


@pytest.mark.parametrize("nodes", [1, 2, 3, 4])
def test_vec_copy_all_node_counts(nodes):
    rt, rec = _launch_vec_copy(nodes)
    if nodes == 1:
        assert rec.plan.replicated
    else:
        assert not rec.plan.replicated
        assert rec.phases.allgather > 0
        assert rec.comm_bytes > 0


def test_more_nodes_than_full_blocks_replicates():
    # 5 blocks with a tail block -> 4 full blocks cannot be split 5 ways
    rt, rec = _launch_vec_copy(5)
    assert rec.plan.replicated
    assert "fewer fully-covered blocks" in rec.plan.reason


def test_phase_times_recorded():
    rt, rec = _launch_vec_copy(2)
    p = rec.phases
    assert p.total == p.partial + p.allgather + p.callback + p.overhead
    assert 0 <= p.network_fraction <= 1
    assert rt.sim_time >= p.total
    assert "distributed" in rec.describe()


def test_faithful_and_fast_replication_agree():
    rt1, rec1 = _launch_vec_copy(3, faithful_replication=True)
    rt2, rec2 = _launch_vec_copy(3, faithful_replication=False)
    a = rt1.memory.memcpy_d2h("dest", check_consistency=True)
    b = rt2.memory.memcpy_d2h("dest", check_consistency=True)
    assert np.array_equal(a, b)
    assert rec1.time == pytest.approx(rec2.time)


def test_non_distributable_kernel_falls_back_and_stays_correct():
    cl = Cluster(SIMD_FOCUSED_NODE, 4)
    rt = CuCCRuntime(cl)
    n, bins = 1000, 16
    data = np.random.default_rng(0).integers(0, bins, n).astype(np.int32)
    rt.memory.alloc("d", n, np.int32)
    rt.memory.alloc("bins", bins, np.int32)
    rt.memory.memcpy_h2d("d", data)
    compiled = rt.compile(parse_kernel(HIST))
    assert not compiled.distributable
    rec = rt.launch(compiled, 4, 256, {"d": "d", "bins": "bins", "n": n})
    assert rec.plan.replicated
    assert rec.comm_bytes == 0 and rec.phases.allgather == 0
    out = rt.memory.memcpy_d2h("bins", check_consistency=True)
    assert np.array_equal(out, np.bincount(data, minlength=bins))


def test_forced_misclassification_degrades_safely():
    """A false negative (paper section 6.2) must produce a replicated plan
    that still computes the right answer on every node."""
    cl = Cluster(SIMD_FOCUSED_NODE, 3)
    rt = CuCCRuntime(cl)
    compiled = rt.compile(parse_kernel(VEC_COPY))
    # force the static verdict to "not distributable"
    from repro.analysis.metadata import Verdict

    compiled.analysis.metadata.verdict = Verdict.NOT_DISTRIBUTABLE
    compiled.analysis.metadata.reasons.append("forced false negative")
    n = 600
    rt.memory.alloc("src", n, np.int8)
    rt.memory.alloc("dest", n, np.int8)
    host = (np.arange(n) % 99).astype(np.int8)
    rt.memory.memcpy_h2d("src", host)
    rec = rt.launch(compiled, 3, 256, {"src": "src", "dest": "dest", "n": n})
    assert rec.plan.replicated
    out = rt.memory.memcpy_d2h("dest", check_consistency=True)
    assert np.array_equal(out, host)


def test_launch_argument_validation():
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    rt = CuCCRuntime(cl)
    compiled = rt.compile(parse_kernel(VEC_COPY))
    rt.memory.alloc("src", 8, np.int8)
    rt.memory.alloc("dest", 8, np.int8)
    with pytest.raises(LaunchError, match="missing"):
        rt.launch(compiled, 1, 8, {"src": "src", "dest": "dest"})
    with pytest.raises(LaunchError, match="buffer name"):
        rt.launch(compiled, 1, 8,
                  {"src": np.zeros(8, np.int8), "dest": "dest", "n": 8})
    with pytest.raises(DeviceMemoryError):
        rt.launch(compiled, 1, 8, {"src": "nope", "dest": "dest", "n": 8})


def test_compile_is_cached():
    cl = Cluster(SIMD_FOCUSED_NODE, 1)
    rt = CuCCRuntime(cl)
    k = parse_kernel(VEC_COPY)
    assert rt.compile(k) is rt.compile(k)


def test_sequential_launches_preserve_invariant():
    """Two dependent launches: the second reads what the first wrote."""
    cl = Cluster(SIMD_FOCUSED_NODE, 2)
    rt = CuCCRuntime(cl)
    n = 512
    src = """
__global__ void scale(const float *x, float *y, int n, float f) {
    int id = blockDim.x * blockIdx.x + threadIdx.x;
    if (id < n) y[id] = x[id] * f;
}
"""
    compiled = rt.compile(parse_kernel(src))
    for name in ("a", "b", "c"):
        rt.memory.alloc(name, n, np.float32)
    host = np.random.default_rng(1).random(n).astype(np.float32)
    rt.memory.memcpy_h2d("a", host)
    rt.launch(compiled, 2, 256, {"x": "a", "y": "b", "n": n, "f": 2.0})
    rt.launch(compiled, 2, 256, {"x": "b", "y": "c", "n": n, "f": 3.0})
    out = rt.memory.memcpy_d2h("c", check_consistency=True)
    assert np.allclose(out, host * 6.0)
    assert len(rt.launches) == 2


def test_model_agrees_with_runtime_phases():
    """The analytical sweep model and the executing runtime must produce
    the same phase times for the same configuration."""
    from repro.bench.profile import model_cucc_time, profile_workload
    from repro.hw import INFINIBAND_100G
    from repro.workloads import PERF_WORKLOADS

    for name in ("FIR", "KMeans", "GA"):
        spec = PERF_WORKLOADS[name]("small")
        prof = profile_workload(spec)
        from repro.bench.harness import run_on_cucc

        spec2 = PERF_WORKLOADS[name]("small")
        res = run_on_cucc(spec2, Cluster(SIMD_FOCUSED_NODE, 4))
        model = model_cucc_time(prof, SIMD_FOCUSED_NODE, INFINIBAND_100G, 4)
        assert model.partial == pytest.approx(res.record.phases.partial,
                                              rel=0.02)
        assert model.allgather == pytest.approx(res.record.phases.allgather,
                                                rel=0.02)
        assert model.callback == pytest.approx(res.record.phases.callback,
                                               rel=0.05)

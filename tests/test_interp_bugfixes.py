"""Regression tests for interpreter bugs surfaced by the sanitizer sweep.

Three defects, each locked in here:

1. **Atomic old values under colliding indices.**  The vectorized atomic
   path pre-gathered ``old = arr[safe]`` before applying the update, so
   when several active lanes hit the same location every one of them saw
   the *initial* value instead of the value left by the preceding lane
   of some serial interleaving.  Inactive (guarded-off / retired) lanes
   must not contribute either way.
2. **Loop trip counts.**  A thread-variant loop bound with a zero or
   negative trip count must execute zero iterations for those lanes (no
   first-iteration leakage), and a zero *step* must only be an error
   when the loop would actually iterate — a zero-trip zero-step loop is
   legal and runs no iterations (the variant path previously span to the
   iteration cap instead of diagnosing the stuck lanes).
3. **Shared-memory extent faults.**  An index outside the per-block
   extent raises :class:`InterpError` naming the array, the offending
   block and thread — and is clamped within the block's *own* segment,
   never wrapping into a neighbouring block's slice of the span-wide
   backing array.

Section 4 holds the bugs the *JIT differential gate* surfaced (this
repo's second bug-detecting sweep, same precedent): shift results
escaping the declared C type, inactive-lane addresses inflating the
64-byte-line traffic estimate, and the specialization key confusing
structurally distinct kernels that print identically.
"""

import numpy as np
import pytest

from repro.errors import InterpError
from repro.frontend.parser import parse_kernel
from repro.interp import LaunchConfig, run_grid
from repro.ir import I32, IRBuilder

# ---------------------------------------------------------------------------
# 1. atomics: old values under duplicate indices + divergent guards
# ---------------------------------------------------------------------------


def _atomic_kernel(op="add", value=1, result="old"):
    b = IRBuilder(f"atomic_{op}")
    c = b.pointer_param("c", I32)
    out = b.pointer_param("out", I32)
    n = b.scalar_param("n", I32)
    with b.if_(b.tid_x < n):
        old = b.atomic(op, c, 0, value, result=result)
        b.store(out, b.tid_x, old)
    return b.finish()


def test_atomic_add_old_values_are_a_serial_interleaving():
    kernel = _atomic_kernel("add")
    c = np.array([100], dtype=np.int32)
    out = np.full(8, -1, dtype=np.int32)
    run_grid(kernel, LaunchConfig.make(1, 8), {"c": c, "out": out, "n": 5})
    # five colliding increments: the counter advances by exactly 5 and
    # each active lane observes a distinct intermediate value
    assert c[0] == 105
    assert sorted(out[:5]) == [100, 101, 102, 103, 104]
    # guarded-off lanes contributed nothing and observed nothing
    assert list(out[5:]) == [-1, -1, -1]


def test_atomic_exch_old_values_chain():
    b = IRBuilder("atomic_exch")
    c = b.pointer_param("c", I32)
    out = b.pointer_param("out", I32)
    n = b.scalar_param("n", I32)
    with b.if_(b.tid_x < n):
        old = b.atomic("exch", c, 0, b.tid_x + 10, result="old")
        b.store(out, b.tid_x, old)
    kernel = b.finish()
    c = np.array([99], dtype=np.int32)
    out = np.full(8, -1, dtype=np.int32)
    run_grid(kernel, LaunchConfig.make(1, 8), {"c": c, "out": out, "n": 4})
    # lane-order interleaving: each lane sees its predecessor's value
    assert list(out[:4]) == [99, 10, 11, 12]
    assert c[0] == 13


def test_atomic_max_old_values_with_duplicates():
    b = IRBuilder("atomic_max")
    c = b.pointer_param("c", I32)
    out = b.pointer_param("out", I32)
    old = b.atomic("max", c, 0, b.tid_x * 3, result="old")
    b.store(out, b.tid_x, old)
    kernel = b.finish()
    c = np.array([2], dtype=np.int32)
    out = np.full(4, -1, dtype=np.int32)
    run_grid(kernel, LaunchConfig.make(1, 4), {"c": c, "out": out})
    # lane values 0,3,6,9 against init 2: each lane observes the running
    # max left by its predecessors, not the initial value
    assert list(out) == [2, 2, 3, 6]
    assert c[0] == 9


def test_atomic_distinct_indices_keep_vectorized_semantics():
    b = IRBuilder("atomic_distinct")
    c = b.pointer_param("c", I32)
    out = b.pointer_param("out", I32)
    old = b.atomic("add", c, b.tid_x, 7, result="old")
    b.store(out, b.tid_x, old)
    kernel = b.finish()
    c = np.arange(6, dtype=np.int32)
    out = np.zeros(6, dtype=np.int32)
    run_grid(kernel, LaunchConfig.make(1, 6), {"c": c, "out": out})
    assert list(out) == [0, 1, 2, 3, 4, 5]
    assert list(c) == [7, 8, 9, 10, 11, 12]


# ---------------------------------------------------------------------------
# 2. loops: zero/negative trip counts and zero steps
# ---------------------------------------------------------------------------


def test_variant_loop_zero_and_negative_trip_lanes_run_zero_iterations():
    b = IRBuilder("trip")
    out = b.pointer_param("out", I32)
    with b.for_("i", 0, b.tid_x - 2) as i:
        b.store(out, b.tid_x, i)
    kernel = b.finish()
    out = np.full(8, -1, dtype=np.int32)
    run_grid(kernel, LaunchConfig.make(1, 8), {"out": out})
    # threads 0..2 have stop <= 0: no first-iteration leakage
    assert list(out[:3]) == [-1, -1, -1]
    # thread t >= 3 ends with i == t - 3
    assert list(out[3:]) == [0, 1, 2, 3, 4]


def test_variant_loop_negative_step_descends():
    b = IRBuilder("descend")
    out = b.pointer_param("out", I32)
    with b.for_("i", 0, b.tid_x - 2, step=-1) as i:
        b.store(out, b.tid_x, i)
    kernel = b.finish()
    out = np.full(4, 9, dtype=np.int32)
    run_grid(kernel, LaunchConfig.make(1, 4), {"out": out})
    # thread 0: i = 0, -1 (stop -2); thread 1: i = 0 (stop -1);
    # threads 2, 3: stop >= start with a negative step -> zero iterations
    assert list(out) == [-1, 0, 9, 9]


def test_invariant_zero_step_zero_trip_is_legal():
    kernel = parse_kernel("""
__global__ void ztrip(int* out, int n) {
    out[threadIdx.x] = 1;
    for (int i = 5; i < n; i = i + 0) { out[threadIdx.x] = 2; }
}""")
    out = np.zeros(4, dtype=np.int32)
    run_grid(kernel, LaunchConfig.make(1, 4), {"out": out, "n": 5})
    assert list(out) == [1, 1, 1, 1]  # loop body never ran, no error


def test_invariant_zero_step_nonzero_trip_raises():
    kernel = parse_kernel("""
__global__ void zspin(int* out, int n) {
    for (int i = 0; i < n; i = i + 0) { out[threadIdx.x] = 2; }
}""")
    out = np.zeros(4, dtype=np.int32)
    with pytest.raises(InterpError, match="zero step"):
        run_grid(kernel, LaunchConfig.make(1, 4), {"out": out, "n": 3})


def test_variant_zero_step_stuck_lane_raises_instead_of_spinning():
    b = IRBuilder("vspin")
    out = b.pointer_param("out", I32)
    n = b.scalar_param("n", I32)
    # thread 0's step is 0 with a nonzero trip: previously ground toward
    # the 50M-iteration cap; now diagnosed immediately
    with b.for_("i", 0, n, step=b.tid_x):
        b.store(out, b.tid_x, 1)
    kernel = b.finish()
    out = np.zeros(4, dtype=np.int32)
    with pytest.raises(InterpError, match="zero step"):
        run_grid(kernel, LaunchConfig.make(1, 4), {"out": out, "n": 2})


def test_variant_zero_step_zero_trip_is_legal():
    b = IRBuilder("vztrip")
    out = b.pointer_param("out", I32)
    n = b.scalar_param("n", I32)
    with b.for_("i", 0, n, step=b.tid_x):
        b.store(out, b.tid_x, 1)
    kernel = b.finish()
    out = np.zeros(4, dtype=np.int32)
    run_grid(kernel, LaunchConfig.make(1, 4), {"out": out, "n": 0})
    assert list(out) == [0, 0, 0, 0]


# ---------------------------------------------------------------------------
# 3. shared-memory extent faults
# ---------------------------------------------------------------------------

_NOWRAP_SRC = """
__global__ void nowrap(float* y) {
    __shared__ float s[4];
    int tid = threadIdx.x;
    s[tid] = blockIdx.x * 10.0f + tid;
    __syncthreads();
    y[blockIdx.x * blockDim.x + tid] = s[tid + 4];
}"""


def test_shared_oob_raises_with_block_and_thread():
    kernel = parse_kernel(_NOWRAP_SRC)
    y = np.zeros(8, dtype=np.float32)
    with pytest.raises(
        InterpError,
        match=r"out-of-bounds shared access to 's'.*extent 4.*"
              r"blockIdx\.x \d+, threadIdx\.x \d+",
    ):
        run_grid(kernel, LaunchConfig.make(2, 4), {"y": y})


def test_shared_oob_never_wraps_into_neighbouring_block():
    kernel = parse_kernel(_NOWRAP_SRC)
    y = np.zeros(8, dtype=np.float32)
    ex = run_grid(kernel, LaunchConfig.make(2, 4), {"y": y}, sanitize=True)
    from repro.sanitize import FindingKind

    assert FindingKind.OOB_SHARED in ex.sanitizer.report.kinds()
    # every out-of-extent read clamps to cell 0 of the *same* block's
    # segment: block 0 observes 0.0, block 1 observes 10.0 — if the index
    # wrapped across segments, block 1 would read block 0's values
    np.testing.assert_array_equal(y[:4], np.zeros(4, np.float32))
    np.testing.assert_array_equal(y[4:], np.full(4, 10.0, np.float32))


# ---------------------------------------------------------------------------
# 4. bugs surfaced by the JIT differential gate
# ---------------------------------------------------------------------------


def _run_counted(kernel, grid, block, args, backend):
    from repro.interp import OpCounters

    counters = OpCounters()
    run_grid(kernel, LaunchConfig.make(grid, block), args,
             counters=counters, backend=backend)
    return counters


def test_shift_result_wraps_at_declared_type():
    """``1 << 31`` on a 32-bit int is INT32_MIN, not 2**31.

    The interpreter shifts with an int64 count, and NumPy's promotion
    widened the *result* to int64 too, so the value escaped the declared
    C type and flowed onward as +2147483648.  The gate flagged it when
    the JIT (which wraps correctly) disagreed; the fix casts the shift
    result back to the declared type."""
    kernel = parse_kernel("""
__global__ void shl(int* out, int n) {
    int one = 1;
    int v = one << n;
    out[threadIdx.x] = v / 1;
}""")
    for backend in ("interp", "jit"):
        out = np.zeros(4, dtype=np.int32)
        run_grid(kernel, LaunchConfig.make(1, 4), {"out": out, "n": 31},
                 backend=backend)
        np.testing.assert_array_equal(
            out, np.full(4, np.int32(-2**31)), err_msg=backend
        )


def test_line_traffic_ignores_inactive_lane_addresses():
    """A guarded gather must meter only the *active* lanes' addresses.

    ``_count_lines`` took min/max over every lane's index — including
    lanes the guard had switched off — so one wild inactive address
    stretched the 64-byte-line span estimate and inflated
    ``global_line_bytes`` (and with it the simulated memory clock)."""
    kernel = parse_kernel("""
__global__ void gather(float* x, int* idx, float* y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = x[idx[i]]; }
}""")
    idx = np.zeros(64, dtype=np.int32)
    idx[:8] = np.arange(8)   # the 8 active lanes read 8 contiguous cells
    idx[8:] = 4095           # inactive lanes point 16 KiB away

    def args():
        return {"x": np.arange(4096, dtype=np.float32), "idx": idx.copy(),
                "y": np.zeros(64, np.float32), "n": 8}

    ci = _run_counted(kernel, 1, 64, args(), "interp")
    cj = _run_counted(kernel, 1, 64, args(), "jit")
    # three guarded accesses (idx load, x gather, y store), each within
    # one 64-byte line of the active lanes' addresses
    assert ci.global_line_bytes == 64.0 * 3
    assert ci.as_dict() == cj.as_dict()


def test_specialization_key_distinguishes_printed_twins():
    """Two kernels that print identically but differ structurally (an
    explicit ``-(1)`` loop step vs the folded ``-1``) count a different
    number of int ops; a text-derived key served one's compiled program
    for the other.  The key now hashes the structural repr, and both
    variants stay bit-identical across backends."""
    from repro.interp.jit import diff_grid, program_key
    from repro.ir.expr import Const, UnOp
    from repro.transform.simplify import simplify_kernel

    b = IRBuilder("negstep")
    out = b.pointer_param("out", I32)
    with b.for_("i", 3, 0, step=UnOp("-", Const(1, I32))) as i:
        b.store(out, i, i)
    raw = b.finish()
    folded = simplify_kernel(raw)
    assert program_key(raw, (4, 1, 1), True) != program_key(
        folded, (4, 1, 1), True
    )
    for kernel in (raw, folded):
        res = diff_grid(kernel, 1, 4, {"out": np.zeros(4, np.int32)})
        assert res.identical, res.mismatches
